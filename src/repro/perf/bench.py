"""Tier-1 wall-clock microbenchmarks and the ``BENCH_tier1.json`` schema.

Where :mod:`repro.lint.ops` measures operations on the **simulated**
clock (is the model O(1)?), this registry measures the same hot
operations on the **wall** clock (how fast does the simulator itself
run?).  Both axes matter: the lint fitter keeps the model honest, this
suite keeps the implementation honest — its results are committed as a
``BENCH_tier1.json`` trajectory and gated in CI by
:mod:`repro.perf.compare`.

Each :class:`BenchOp` has a ``prepare()`` that builds a fresh small
machine (setup cost stays off the clock) and returns a zero-argument
callable invoked ``batch`` times per round; the per-op figure is the
median over rounds of ``elapsed / batch``.  Ops that consume state
(fresh pages to fault, regions to unmap) provision enough for a full
round inside ``prepare()``.

Because absolute wall time is machine-dependent, every run also measures
a fixed pure-Python **calibration loop**; the comparator scales baseline
figures by the calibration ratio before judging regressions, so a
committed baseline from one machine still gates on another.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.kernel.kernel import Kernel, MachineConfig
from repro.units import KIB, MIB, PAGE_SIZE

#: Schema identifier written into (and required from) every document.
SCHEMA = "repro.perf.bench/v1"
SCHEMA_VERSION = 1

#: Rounds per op: full trajectory runs vs the CI quick gate.
FULL_ROUNDS = 15
QUICK_ROUNDS = 5

#: Quick mode divides each op's batch by this (floor 1).
QUICK_BATCH_DIVISOR = 4


@dataclass(frozen=True)
class BenchOp:
    """One wall-clock microbenchmark over the simulator."""

    name: str
    #: Builds fresh state; returns the callable timed ``batch`` times.
    prepare: Callable[[], Callable[[], object]]
    #: Inner invocations per round (amortizes timer granularity).
    batch: int
    note: str = ""

    def batch_for(self, quick: bool) -> int:
        """The effective batch size for full vs quick runs."""
        return max(1, self.batch // QUICK_BATCH_DIVISOR) if quick else self.batch


@dataclass(frozen=True)
class OpResult:
    """Measured wall-clock figures for one op."""

    name: str
    median_ns: float
    ops_per_sec: float
    rounds: int
    batch: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "median_ns": self.median_ns,
            "ops_per_sec": self.ops_per_sec,
            "rounds": self.rounds,
            "batch": self.batch,
        }


def _machine(**overrides: object) -> Kernel:
    config = dict(
        dram_bytes=128 * MIB,
        nvm_bytes=256 * MIB,
        range_hardware=True,
        pmfs_extent_align_frames=512,
    )
    config.update(overrides)
    return Kernel(MachineConfig(**config))  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Op preparers.  Each returns the closure timed `batch` times per round.
# ---------------------------------------------------------------------------
def _prep_access_tlb_hit() -> Callable[[], object]:
    from repro.vm.vma import MapFlags

    kernel = _machine()
    process = kernel.spawn("b")
    va = kernel.syscalls(process).mmap(
        PAGE_SIZE, flags=MapFlags.PRIVATE | MapFlags.POPULATE
    )
    kernel.access(process, va)  # warm: entry resident in the TLB
    return lambda: kernel.access(process, va)


def _prep_access_tlb_miss_walk() -> Callable[[], object]:
    from repro.vm.vma import MapFlags

    kernel = _machine()
    process = kernel.spawn("b")
    npages = 4096  # ~2.7x the 1536-entry 4 KiB TLB: sequential = all misses
    size = npages * PAGE_SIZE
    va = kernel.syscalls(process).mmap(
        size, flags=MapFlags.PRIVATE | MapFlags.POPULATE
    )
    kernel.access_range(process, va, size)  # warm page-table cache lines
    cursor = [0]

    def step() -> object:
        index = cursor[0]
        cursor[0] = (index + 1) % npages
        return kernel.access(process, va + index * PAGE_SIZE)

    return step


def _prep_access_fault_minor(round_budget: int) -> Callable[[], object]:
    kernel = _machine()
    process = kernel.spawn("b")
    va = kernel.syscalls(process).mmap(round_budget * PAGE_SIZE)
    cursor = [0]

    def step() -> object:
        index = cursor[0]
        cursor[0] = index + 1
        return kernel.access(process, va + index * PAGE_SIZE)

    return step


def _prep_mmap_anon() -> Callable[[], object]:
    kernel = _machine()
    sys_calls = kernel.syscalls(kernel.spawn("b"))
    return lambda: sys_calls.mmap(16 * PAGE_SIZE)


def _prep_munmap(round_budget: int) -> Callable[[], object]:
    kernel = _machine()
    process = kernel.spawn("b")
    sys_calls = kernel.syscalls(process)
    # One full bottom-level page-table window per region, partially
    # resident: the extent policy drops the whole subtree in one unlink
    # where the page policy probes all 512 slots.
    length = 512 * PAGE_SIZE
    regions = []
    for _ in range(round_budget):
        va = sys_calls.mmap(length)
        kernel.access_range(process, va, 8 * PAGE_SIZE, write=True)
        regions.append(va)
    regions.reverse()

    def step() -> object:
        va = regions.pop()
        sys_calls.munmap(va, length)
        return va

    return step


def _prep_fork() -> Callable[[], object]:
    from repro.vm.vma import MapFlags

    kernel = _machine()
    parent = kernel.spawn("parent")
    size = 8 * PAGE_SIZE
    va = kernel.syscalls(parent).mmap(
        size, flags=MapFlags.PRIVATE | MapFlags.POPULATE
    )
    kernel.access_range(parent, va, size)
    return lambda: kernel.fork(parent)


def _prep_pmfs_read() -> Callable[[], object]:
    kernel = _machine()
    assert kernel.pmfs is not None
    process = kernel.spawn("b")
    sys_calls = kernel.syscalls(process)
    fd = sys_calls.open(kernel.pmfs, "/bench", create=True, size=64 * KIB)
    return lambda: sys_calls.pread(fd, 0, PAGE_SIZE)


def _prep_pmfs_write() -> Callable[[], object]:
    kernel = _machine()
    assert kernel.pmfs is not None
    process = kernel.spawn("b")
    sys_calls = kernel.syscalls(process)
    fd = sys_calls.open(kernel.pmfs, "/bench", create=True, size=64 * KIB)
    payload = b"\xa5" * PAGE_SIZE
    return lambda: sys_calls.pwrite(fd, 0, payload)


def _prep_pmfs_journal_commit() -> Callable[[], object]:
    kernel = _machine()
    pmfs = kernel.pmfs
    assert pmfs is not None
    inode = pmfs.create("/bench", size=0)

    def txn() -> object:
        pmfs.allocate_blocks(inode, 1)  # one journaled alloc commit
        pmfs.shrink_blocks(inode, 0)  # one journaled shrink commit
        return inode

    return txn


def _prep_premap_attach() -> Callable[[], object]:
    from repro.core.o1.premap import PageTableCache

    kernel = _machine()
    assert kernel.pmfs is not None
    inode = kernel.pmfs.create("/bench", size=2 * MIB)
    ptcache = PageTableCache(
        kernel.config.page_table_levels,
        kernel.clock, kernel.costs, kernel.counters,
    )
    ptcache.premap(inode)
    space = kernel.spawn("b").space

    def attach_detach() -> object:
        attachment = ptcache.attach(space, inode)
        ptcache.detach(attachment)
        return attachment

    return attach_detach


def _prep_tlb_invalidate_range() -> Callable[[], object]:
    from repro.vm.vma import MapFlags

    kernel = _machine()
    process = kernel.spawn("b")
    size = 2 * MIB
    va = kernel.syscalls(process).mmap(
        size, flags=MapFlags.PRIVATE | MapFlags.POPULATE
    )
    asid = process.space.asid
    fill_pages = 8

    def step() -> object:
        for index in range(fill_pages):  # refill a few entries to drop
            kernel.access(process, va + index * PAGE_SIZE)
        return kernel.tlb.invalidate_range(va, size, asid=asid)

    return step


def _prep_buddy_free_many(round_budget: int) -> Callable[[], object]:
    kernel = _machine()
    buddy = kernel.dram_buddy
    chunk = 64
    batches = [
        [buddy.alloc(0) for _ in range(chunk)] for _ in range(round_budget)
    ]
    batches.reverse()

    def step() -> object:
        frames = batches.pop()
        buddy.free_many(frames)
        return frames

    return step


def _prep_fom_allocate_release() -> Callable[[], object]:
    from repro.core.fom.manager import FileOnlyMemory

    kernel = _machine()
    fom = FileOnlyMemory(kernel)
    process = kernel.spawn("b")

    def cycle() -> object:
        region = fom.allocate(process, 2 * MIB)
        fom.release(region)
        return region

    return cycle


def _prep_rangetrans_map_unmap() -> Callable[[], object]:
    from repro.core.rangetrans.manager import RangeMemory

    kernel = _machine()
    assert kernel.pmfs is not None
    inode = kernel.pmfs.create("/bench", size=2 * MIB)
    memory = RangeMemory(kernel)
    process = kernel.spawn("b")

    def cycle() -> object:
        mapping = memory.map_file(process, inode)
        memory.unmap(mapping)
        return mapping

    return cycle


def _prep_spawn_exit() -> Callable[[], object]:
    kernel = _machine()

    def cycle() -> object:
        process = kernel.spawn("b")
        process.exit()
        return process

    return cycle


#: The tier-1 registry: every hot operation the lint fitter also covers,
#: measured on the wall clock.  Keep ``batch`` sized so one full round
#: lands in roughly 1-10 ms on a developer machine.
TIER1_OPS: List[BenchOp] = [
    BenchOp("access.tlb_hit", _prep_access_tlb_hit, 512,
            "resident 4 KiB page, TLB-warm: the floor of the access path"),
    BenchOp("access.tlb_miss_walk", _prep_access_tlb_miss_walk, 512,
            "sequential cycle over 4096 resident pages: every probe "
            "misses the 1536-entry TLB and walks"),
    BenchOp("access.fault_minor",
            lambda: _prep_access_fault_minor(256), 256,
            "first touch of a fresh anonymous page: trap + allocate + map"),
    BenchOp("syscall.mmap_anon", _prep_mmap_anon, 256,
            "16-page anonymous VMA insert, no populate"),
    BenchOp("syscall.munmap", lambda: _prep_munmap(128), 128,
            "teardown of a 2 MiB anonymous window with 8 resident pages "
            "(extent subtree drop)"),
    BenchOp("kernel.fork", _prep_fork, 16,
            "fork of a parent with 8 resident private pages "
            "(COW subtree share)"),
    BenchOp("pmfs.read", _prep_pmfs_read, 256,
            "4 KiB positioned read from a DAX PMFS file"),
    BenchOp("pmfs.write", _prep_pmfs_write, 256,
            "4 KiB positioned write to a DAX PMFS file"),
    BenchOp("pmfs.journal_commit", _prep_pmfs_journal_commit, 64,
            "one journaled block alloc + one journaled shrink (two "
            "commits) per iteration"),
    BenchOp("premap.attach", _prep_premap_attach, 128,
            "premapped 2 MiB window attach + detach"),
    BenchOp("tlb.invalidate_range", _prep_tlb_invalidate_range, 128,
            "8 TLB refills + one batched 2 MiB range invalidation"),
    BenchOp("mem.free_many", lambda: _prep_buddy_free_many(128), 128,
            "batched buddy free of 64 order-0 frames"),
    BenchOp("fom.allocate_release", _prep_fom_allocate_release, 64,
            "2 MiB file-only-memory allocate + release cycle"),
    BenchOp("rangetrans.map_unmap", _prep_rangetrans_map_unmap, 64,
            "single-extent range-translation map + unmap cycle"),
    BenchOp("kernel.spawn_exit", _prep_spawn_exit, 64,
            "process spawn (fresh page table + address space) + exit"),
]


def ops_by_name(names: Optional[Sequence[str]] = None) -> List[BenchOp]:
    """The registry, optionally filtered to ``names`` (exact match)."""
    if not names:
        return list(TIER1_OPS)
    known = {op.name: op for op in TIER1_OPS}
    missing = [name for name in names if name not in known]
    if missing:
        raise KeyError(f"unknown bench ops {missing}; known: {sorted(known)}")
    return [known[name] for name in names]


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------
def run_op(
    op: BenchOp,
    rounds: int = FULL_ROUNDS,
    quick: bool = False,
    clock_ns: Callable[[], int] = time.perf_counter_ns,
) -> OpResult:
    """Measure one op: median over ``rounds`` of per-call wall ns."""
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    batch = op.batch_for(quick)
    samples: List[float] = []
    for _ in range(rounds):
        fn = op.prepare()
        start = clock_ns()
        for _ in range(batch):
            fn()
        elapsed = clock_ns() - start
        samples.append(elapsed / batch)
    median_ns = statistics.median(samples)
    ops_per_sec = 1e9 / median_ns if median_ns > 0 else 0.0
    return OpResult(
        name=op.name,
        median_ns=median_ns,
        ops_per_sec=ops_per_sec,
        rounds=rounds,
        batch=batch,
    )


def run_suite(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    rounds: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[OpResult]:
    """Run the registry (or the named subset) and return results."""
    effective_rounds = rounds or (QUICK_ROUNDS if quick else FULL_ROUNDS)
    results = []
    for op in ops_by_name(names):
        result = run_op(op, rounds=effective_rounds, quick=quick)
        if progress is not None:
            progress(
                f"{op.name:<24} {result.median_ns:>12,.0f} ns/op "
                f"({result.ops_per_sec:>12,.0f} ops/s, "
                f"{result.rounds} rounds x {result.batch})"
            )
        results.append(result)
    return results


# ---------------------------------------------------------------------------
# Calibration + environment fingerprint
# ---------------------------------------------------------------------------
def calibrate(
    rounds: int = 7, clock_ns: Callable[[], int] = time.perf_counter_ns
) -> float:
    """Median wall ns of a fixed pure-Python loop.

    The loop is deliberately allocation-free and branch-light so its
    speed tracks the interpreter + host CPU, the same substrate the
    simulator runs on; the comparator uses the baseline/current ratio to
    normalize absolute figures across machines.
    """
    samples = []
    for _ in range(rounds):
        acc = 0
        start = clock_ns()
        for i in range(50_000):
            acc = (acc + i) ^ (i << 1)
        samples.append(clock_ns() - start)
    return float(statistics.median(samples))


def env_fingerprint(calibration_ns: Optional[float] = None) -> Dict[str, object]:
    """The environment block stamped into every bench document."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "calibration_ns": (
            calibrate() if calibration_ns is None else calibration_ns
        ),
    }


# ---------------------------------------------------------------------------
# BENCH_tier1.json document
# ---------------------------------------------------------------------------
def build_document(
    results: Sequence[OpResult],
    env: Optional[Dict[str, object]] = None,
    mode: str = "full",
) -> Dict[str, object]:
    """Assemble the ``BENCH_tier1.json`` document for ``results``."""
    return {
        "version": SCHEMA_VERSION,
        "schema": SCHEMA,
        "mode": mode,
        "env": env if env is not None else env_fingerprint(),
        "ops": {result.name: result.to_dict() for result in results},
    }


def validate_document(document: object) -> List[str]:
    """Schema problems with ``document`` ([] means valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, expected object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    if document.get("version") != SCHEMA_VERSION:
        problems.append(
            f"version is {document.get('version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    env = document.get("env")
    if not isinstance(env, dict):
        problems.append("env block missing")
    else:
        calibration = env.get("calibration_ns")
        if not isinstance(calibration, (int, float)) or calibration <= 0:
            problems.append(
                f"env.calibration_ns must be a positive number, "
                f"got {calibration!r}"
            )
    ops = document.get("ops")
    if not isinstance(ops, dict) or not ops:
        problems.append("ops block missing or empty")
        return problems
    for name, figures in sorted(ops.items()):
        if not isinstance(figures, dict):
            problems.append(f"ops[{name!r}] is not an object")
            continue
        for field_name in ("median_ns", "ops_per_sec"):
            value = figures.get(field_name)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"ops[{name!r}].{field_name} must be a positive "
                    f"number, got {value!r}"
                )
        for field_name in ("rounds", "batch"):
            value = figures.get(field_name)
            if not isinstance(value, int) or value < 1:
                problems.append(
                    f"ops[{name!r}].{field_name} must be an int >= 1, "
                    f"got {value!r}"
                )
    return problems


def write_document(path: str, document: Dict[str, object]) -> None:
    """Write a bench document as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_document(path: str) -> Dict[str, object]:
    """Load and validate a bench document; raises ``ValueError`` if bad."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    problems = validate_document(document)
    if problems:
        raise ValueError(
            f"{path} is not a valid {SCHEMA} document: " + "; ".join(problems)
        )
    return document


def results_table(results: Sequence[OpResult]) -> str:
    """Human table of results, slowest op first."""
    header = (
        f"{'op':<24} {'median ns/op':>14} {'ops/sec':>14} "
        f"{'rounds':>7} {'batch':>6}"
    )
    lines = [header, "-" * len(header)]
    for result in sorted(results, key=lambda r: -r.median_ns):
        lines.append(
            f"{result.name:<24} {result.median_ns:>14,.0f} "
            f"{result.ops_per_sec:>14,.0f} {result.rounds:>7} "
            f"{result.batch:>6}"
        )
    return "\n".join(lines)
