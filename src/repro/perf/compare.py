"""Regression gate over ``BENCH_tier1.json`` trajectories.

Compares a fresh bench document against a committed baseline and fails
when any op slowed past its tolerance.  Two details make a committed
baseline usable across machines:

* **Calibration scaling** — both documents carry the wall time of the
  same fixed pure-Python loop (:func:`repro.perf.bench.calibrate`).
  Baseline medians are scaled by ``current_calibration /
  baseline_calibration`` (clamped) before comparison, so a uniformly
  slower CI runner does not read as a regression and a uniformly faster
  one does not mask a real slowdown.

* **Per-op tolerances** — the default ratio gate is
  :data:`DEFAULT_TOLERANCE` (must stay **below 2.0**: the injected
  2x-slowdown test fixture has to fail).  Sub-microsecond ops get
  :data:`SMALL_OP_BONUS` extra slack because a handful of nanoseconds
  of host jitter is a large *ratio* on a tiny op; individual ops can be
  widened via :data:`PER_OP_TOLERANCE` with a comment saying why.

Ops present in the baseline but missing from the current run fail the
gate (a silently dropped benchmark is how trajectories rot); new ops
are reported but pass — commit a refreshed baseline to start gating
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.perf.bench import OpResult, validate_document

#: Fail an op when current > tolerance x (scaled) baseline median.
#: Must stay < 2.0 so a genuine 2x slowdown always turns the gate red.
DEFAULT_TOLERANCE = 1.6

#: Ops with a baseline median under this get extra ratio slack.
SMALL_OP_NS = 2_000.0
SMALL_OP_BONUS = 0.4

#: Per-op tolerance overrides (name -> ratio).  Keep each entry under
#: 2.0 and justified.
PER_OP_TOLERANCE: Dict[str, float] = {
    # Fork builds a whole child page table; its wall time has the widest
    # spread of the registry under allocator/GC jitter.
    "kernel.fork": 1.8,
}

#: Calibration ratio clamp: outside this range the two machines are too
#: different for linear scaling to mean much, so stop extrapolating.
_SCALE_CLAMP = (0.2, 5.0)


class MissingBaselineError(FileNotFoundError):
    """``--compare`` pointed at a baseline file that does not exist."""


@dataclass(frozen=True)
class OpComparison:
    """Verdict for one op present in the baseline."""

    name: str
    baseline_ns: float
    scaled_baseline_ns: float
    current_ns: Optional[float]
    tolerance: float

    @property
    def ratio(self) -> Optional[float]:
        """current / scaled baseline (None when the op went missing)."""
        if self.current_ns is None or self.scaled_baseline_ns <= 0:
            return None
        return self.current_ns / self.scaled_baseline_ns

    @property
    def ok(self) -> bool:
        ratio = self.ratio
        return ratio is not None and ratio <= self.tolerance

    @property
    def verdict(self) -> str:
        if self.current_ns is None:
            return "MISSING"
        return "ok" if self.ok else "REGRESSED"


@dataclass
class CompareReport:
    """Full gate outcome: one comparison per baseline op."""

    scale: float
    comparisons: List[OpComparison] = field(default_factory=list)
    #: Ops in the current run with no baseline entry (pass, reported).
    new_ops: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(comparison.ok for comparison in self.comparisons)

    def problems(self) -> List[str]:
        """Human-readable failures ([] when the gate passes)."""
        out = []
        for comparison in self.comparisons:
            if comparison.ok:
                continue
            if comparison.current_ns is None:
                out.append(
                    f"{comparison.name}: in the baseline but not in this "
                    "run (dropped benchmark?)"
                )
            else:
                out.append(
                    f"{comparison.name}: {comparison.current_ns:,.0f} ns/op "
                    f"vs scaled baseline "
                    f"{comparison.scaled_baseline_ns:,.0f} ns/op "
                    f"({comparison.ratio:.2f}x > {comparison.tolerance:.2f}x "
                    "tolerance)"
                )
        return out

    def render_text(self) -> str:
        """The comparison table plus a PASS/FAIL summary line."""
        header = (
            f"{'op':<24} {'baseline ns':>12} {'scaled':>12} "
            f"{'current ns':>12} {'ratio':>7} {'tol':>5}  verdict"
        )
        lines = [
            f"calibration scale: x{self.scale:.3f} "
            "(baseline medians scaled by current/baseline calibration)",
            header,
            "-" * len(header),
        ]
        for comparison in sorted(
            self.comparisons,
            key=lambda c: -(c.ratio if c.ratio is not None else float("inf")),
        ):
            ratio = comparison.ratio
            current = comparison.current_ns
            lines.append(
                f"{comparison.name:<24} {comparison.baseline_ns:>12,.0f} "
                f"{comparison.scaled_baseline_ns:>12,.0f} "
                f"{current if current is not None else 0:>12,.0f} "
                f"{ratio if ratio is not None else 0:>7.2f} "
                f"{comparison.tolerance:>5.2f}  {comparison.verdict}"
            )
        for name in sorted(self.new_ops):
            lines.append(f"{name:<24} (new op: no baseline entry yet)")
        failures = self.problems()
        lines.append("")
        if failures:
            lines.append(f"FAIL: {len(failures)} op(s) regressed or missing")
            lines.extend(f"  {problem}" for problem in failures)
        else:
            lines.append(
                f"PASS: all {len(self.comparisons)} baselined op(s) within "
                "tolerance"
            )
        return "\n".join(lines)


def tolerance_for(
    name: str,
    baseline_ns: float,
    default_tolerance: float = DEFAULT_TOLERANCE,
    per_op: Optional[Dict[str, float]] = None,
) -> float:
    """The ratio gate for one op: override, plus small-op slack."""
    overrides = PER_OP_TOLERANCE if per_op is None else per_op
    tolerance = overrides.get(name, default_tolerance)
    if baseline_ns < SMALL_OP_NS:
        tolerance += SMALL_OP_BONUS
    return tolerance


def _calibration_of(document: Dict[str, object]) -> float:
    env = document.get("env")
    assert isinstance(env, dict)
    return float(env["calibration_ns"])  # validated by the schema check


def compare_documents(
    baseline: Dict[str, object],
    current: Dict[str, object],
    default_tolerance: float = DEFAULT_TOLERANCE,
    per_op: Optional[Dict[str, float]] = None,
) -> CompareReport:
    """Gate ``current`` against ``baseline`` (both schema-valid docs)."""
    for label, document in (("baseline", baseline), ("current", current)):
        problems = validate_document(document)
        if problems:
            raise ValueError(
                f"{label} document is invalid: " + "; ".join(problems)
            )
    scale = _calibration_of(current) / _calibration_of(baseline)
    scale = min(max(scale, _SCALE_CLAMP[0]), _SCALE_CLAMP[1])
    baseline_ops = baseline["ops"]
    current_ops = current["ops"]
    assert isinstance(baseline_ops, dict) and isinstance(current_ops, dict)
    report = CompareReport(scale=scale)
    for name in sorted(baseline_ops):
        baseline_ns = float(baseline_ops[name]["median_ns"])
        figures = current_ops.get(name)
        current_ns = float(figures["median_ns"]) if figures else None
        report.comparisons.append(
            OpComparison(
                name=name,
                baseline_ns=baseline_ns,
                scaled_baseline_ns=baseline_ns * scale,
                current_ns=current_ns,
                tolerance=tolerance_for(
                    name, baseline_ns, default_tolerance, per_op
                ),
            )
        )
    report.new_ops = [name for name in current_ops if name not in baseline_ops]
    return report


def compare_to_baseline(
    baseline_path: str,
    results: Sequence[OpResult],
    env: Optional[Dict[str, object]] = None,
    mode: str = "full",
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> CompareReport:
    """Gate fresh ``results`` against the baseline file at ``path``.

    Raises :class:`MissingBaselineError` when the file does not exist —
    callers distinguish "no baseline yet" (generate one) from "baseline
    says you regressed" (fix the slowdown).
    """
    from repro.perf.bench import build_document, load_document

    path = Path(baseline_path)
    if not path.exists():
        raise MissingBaselineError(
            f"baseline {path} does not exist; generate one with "
            f"`repro-o1 bench --json {path}`"
        )
    baseline = load_document(str(path))
    current = build_document(results, env=env, mode=mode)
    return compare_documents(
        baseline, current, default_tolerance=default_tolerance
    )
