"""Wall-clock profiling hooks: where does *real* time go?

The tracer (:mod:`repro.obs.trace`) attributes **simulated** nanoseconds
per ``(pid, subsystem)`` — the model's cost.  :class:`WallProfiler`
attributes **wall-clock** nanoseconds over the *same* span structure —
the implementation's cost.  The two attributions share keys, so the
correlation report (:mod:`repro.perf.report`) can show, per subsystem,
how many simulated nanoseconds the simulator produces per wall-clock
microsecond spent producing them — the number every "make the simulator
faster" PR must move.

Arming follows the chaos/sanitize/ras pattern::

    profiler = kernel.arm_profiler()
    run_workload(kernel)
    print(correlation_report(kernel.tracer.attribution,
                             profiler.attribution,
                             kernel.tracer.process_names))
    profiler.write_collapsed("profile.folded")   # flamegraph.pl input
    profiler.write_pstats("profile.pstats")      # pstats.Stats input

Unarmed, the only residue is one attribute check inside the tracer's
``begin``/``end`` — which themselves only run when tracing is enabled —
so the plain hot paths are untouched and golden figures stay
bit-identical (``tests/test_perf_profiler.py`` pins this).

The profiler reads :func:`time.perf_counter_ns` and **never** touches
the simulated clock: arming it cannot change a single simulated
nanosecond.
"""

from __future__ import annotations

import marshal
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: pstats pseudo-filename for exported span "functions".
_PSTATS_FILE = "~sim"


@dataclass
class _Frame:
    """One open span on the profiler's wall-clock stack."""

    label: str  # "subsystem:name"
    subsystem: str
    pid: int
    path: str  # ";"-joined labels root..self (collapsed-stack key)
    start_ns: int
    child_ns: int = 0


@dataclass
class SpanStat:
    """Aggregate wall-clock stats for one span name."""

    calls: int = 0
    self_ns: int = 0
    cum_ns: int = 0
    #: caller label -> (arc count, arc cumulative wall ns)
    callers: Dict[str, List[int]] = field(default_factory=dict)


class WallProfiler:
    """Per-(pid, subsystem) wall-time attribution over tracer spans.

    The tracer calls :meth:`on_begin` / :meth:`on_end` in lockstep with
    its own span stack (only while armed), and the profiler maintains
    the wall-clock mirror of the tracer's simulated-cost attribution:
    a span's *self* wall time (elapsed minus nested spans) is charged to
    the ``(pid, subsystem)`` that opened it, to the full stack path for
    flamegraphs, and to the span name for pstats.

    ``clock_ns`` is injectable so tests can drive a fake wall clock and
    assert exact attributions.
    """

    def __init__(self, clock_ns: Optional[Callable[[], int]] = None) -> None:
        self._clock_ns = clock_ns or time.perf_counter_ns
        #: Wall ns of span self time per (pid, subsystem) — the mirror
        #: of ``Tracer.attribution`` (which is simulated ns).
        self.attribution: Dict[Tuple[int, str], int] = {}
        #: Collapsed-stack self times: "a;b;c" -> wall ns.
        self.path_self_ns: Dict[str, int] = {}
        #: Per span name ("subsystem:name") aggregate stats.
        self.span_stats: Dict[str, SpanStat] = {}
        self._stack: List[_Frame] = []
        #: Spans closed over the profiler's lifetime.
        self.spans = 0

    # ------------------------------------------------------------------
    # Tracer hooks
    # ------------------------------------------------------------------
    def on_begin(self, name: str, subsystem: str, pid: int) -> None:
        """Open a wall-clock frame (called by ``Tracer.begin``)."""
        label = f"{subsystem}:{name}"
        parent = self._stack[-1].path if self._stack else ""
        path = f"{parent};{label}" if parent else label
        self._stack.append(
            _Frame(label, subsystem, pid, path, self._clock_ns())
        )

    def on_end(self) -> None:
        """Close the innermost frame (called by ``Tracer.end``)."""
        if not self._stack:
            return
        now = self._clock_ns()
        frame = self._stack.pop()
        elapsed = now - frame.start_ns
        self_ns = elapsed - frame.child_ns
        key = (frame.pid, frame.subsystem)
        self.attribution[key] = self.attribution.get(key, 0) + self_ns
        self.path_self_ns[frame.path] = (
            self.path_self_ns.get(frame.path, 0) + self_ns
        )
        stat = self.span_stats.get(frame.label)
        if stat is None:
            stat = self.span_stats[frame.label] = SpanStat()
        stat.calls += 1
        stat.self_ns += self_ns
        stat.cum_ns += elapsed
        if self._stack:
            caller = self._stack[-1]
            caller.child_ns += elapsed
            arc = stat.callers.get(caller.label)
            if arc is None:
                stat.callers[caller.label] = [1, elapsed]
            else:
                arc[0] += 1
                arc[1] += elapsed
        self.spans += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_ns(self) -> int:
        """Total attributed wall nanoseconds (sum of span self times)."""
        return sum(self.attribution.values())

    def subsystem_totals(self) -> Dict[str, int]:
        """Attributed wall self time per subsystem, summed over pids."""
        totals: Dict[str, int] = {}
        for (_pid, subsystem), ns in self.attribution.items():
            totals[subsystem] = totals.get(subsystem, 0) + ns
        return totals

    def clear(self) -> None:
        """Drop all collected attributions (open frames survive)."""
        self.attribution.clear()
        self.path_self_ns.clear()
        self.span_stats.clear()
        self.spans = 0

    # ------------------------------------------------------------------
    # Flamegraph export (Brendan Gregg "collapsed stack" format)
    # ------------------------------------------------------------------
    def collapsed_lines(self) -> List[str]:
        """``stack;frames value`` lines for flamegraph.pl / speedscope.

        Values are wall *microseconds* of self time (flamegraph tooling
        expects sample-count-sized integers; ns totals overflow its
        default width on long runs).  Zero-self-time paths are kept when
        they have descendants charged elsewhere — flamegraph rebuilds
        the hierarchy from the paths alone.
        """
        return [
            f"{path} {self.path_self_ns[path] // 1000}"
            for path in sorted(self.path_self_ns)
        ]

    def write_collapsed(self, path: str) -> int:
        """Write collapsed stacks to ``path``; returns the line count."""
        lines = self.collapsed_lines()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    # ------------------------------------------------------------------
    # pstats export
    # ------------------------------------------------------------------
    def pstats_dict(self) -> Dict[tuple, tuple]:
        """A ``cProfile``-shaped stats dict: one entry per span name.

        Keys are ``(file, line, name)`` triples with the pseudo-file
        ``~sim``; values are ``(cc, nc, tt, ct, callers)`` with times in
        seconds, exactly what :class:`pstats.Stats` loads.
        """
        stats: Dict[tuple, tuple] = {}
        for label, stat in self.span_stats.items():
            callers = {
                (_PSTATS_FILE, 0, caller): (
                    arc[0], arc[0], 0.0, arc[1] / 1e9
                )
                for caller, arc in stat.callers.items()
            }
            stats[(_PSTATS_FILE, 0, label)] = (
                stat.calls,
                stat.calls,
                stat.self_ns / 1e9,
                stat.cum_ns / 1e9,
                callers,
            )
        return stats

    def write_pstats(self, path: str) -> int:
        """Dump a :class:`pstats.Stats`-loadable file; returns entries."""
        stats = self.pstats_dict()
        with open(path, "wb") as handle:
            marshal.dump(stats, handle)
        return len(stats)

    def __repr__(self) -> str:
        return (
            f"WallProfiler(spans={self.spans}, "
            f"subsystems={len(self.subsystem_totals())}, "
            f"total_ms={self.total_ns / 1e6:.1f})"
        )
