"""The sim-cost vs wall-cost correlation report.

Joins the tracer's simulated-ns attribution with the profiler's wall-ns
attribution over their shared ``(pid, subsystem)`` keys and reports, per
row, the *simulation rate*: simulated nanoseconds produced per wall
microsecond spent producing them.  A subsystem whose rate is far below
the others is where the simulator's own implementation — not the model —
is burning real time; that is the row the batched-access-engine work
(ROADMAP direction 2) needs to move.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def correlation_rows(
    sim_attribution: Dict[Tuple[int, str], int],
    wall_attribution: Dict[Tuple[int, str], int],
    process_names: Optional[Dict[int, str]] = None,
) -> List[Tuple[str, str, int, int, float]]:
    """(subsystem, process, sim_ns, wall_ns, sim_ns_per_wall_us) rows.

    Keys present in either attribution appear; the union is sorted by
    wall time, largest first, because wall time is what this report
    exists to explain.
    """
    names = process_names or {}
    keys = set(sim_attribution) | set(wall_attribution)
    rows: List[Tuple[str, str, int, int, float]] = []
    for pid, subsystem in keys:
        sim_ns = sim_attribution.get((pid, subsystem), 0)
        wall_ns = wall_attribution.get((pid, subsystem), 0)
        rate = sim_ns / (wall_ns / 1000.0) if wall_ns else 0.0
        rows.append(
            (subsystem, names.get(pid, f"pid {pid}"), sim_ns, wall_ns, rate)
        )
    rows.sort(key=lambda row: (-row[3], -row[2], row[0], row[1]))
    return rows


def correlation_report(
    sim_attribution: Dict[Tuple[int, str], int],
    wall_attribution: Dict[Tuple[int, str], int],
    process_names: Optional[Dict[int, str]] = None,
) -> str:
    """Text table of :func:`correlation_rows` plus a totals line."""
    rows = correlation_rows(sim_attribution, wall_attribution, process_names)
    header = (
        f"{'subsystem':<10} {'process':<14} {'sim ns':>14} "
        f"{'wall ns':>14} {'sim ns / wall us':>17}"
    )
    lines = [header, "-" * len(header)]
    for subsystem, process, sim_ns, wall_ns, rate in rows:
        lines.append(
            f"{subsystem:<10} {process:<14} {sim_ns:>14,} "
            f"{wall_ns:>14,} {rate:>17,.1f}"
        )
    total_sim = sum(sim_attribution.values())
    total_wall = sum(wall_attribution.values())
    total_rate = total_sim / (total_wall / 1000.0) if total_wall else 0.0
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<10} {'':<14} {total_sim:>14,} "
        f"{total_wall:>14,} {total_rate:>17,.1f}"
    )
    return "\n".join(lines)
