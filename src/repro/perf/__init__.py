"""Performance observability: wall-clock profiling + microbench gates.

PR 1's tracer answers "where did the *simulated* nanoseconds go"; this
package answers the orthogonal question the ROADMAP's scale work needs:
"where does the simulator's *wall-clock* time go, and is it getting
slower?"  Three pieces:

* :class:`WallProfiler` (:mod:`repro.perf.profiler`) — armed via
  ``kernel.arm_profiler()``, attributes wall nanoseconds per
  ``(pid, subsystem)`` over the tracer's span structure, with
  flamegraph (collapsed-stack) and :mod:`pstats` export and a
  sim-vs-wall correlation report (:mod:`repro.perf.report`).
* The tier-1 microbenchmark registry (:mod:`repro.perf.bench`) — the
  hot operations the lint fitter covers, measured on the wall clock and
  committed as the ``BENCH_tier1.json`` trajectory.
* The regression comparator (:mod:`repro.perf.compare`) — per-op
  tolerances over calibration-scaled baselines; CI runs it as
  ``repro-o1 bench --quick --compare BENCH_tier1.json``.

Like chaos/sanitize/ras, everything here is **opt-in and invisible when
unarmed**: no import of this package, and no unarmed code path, changes
a single simulated nanosecond — golden figures stay bit-identical.
"""

from repro.perf.bench import (
    FULL_ROUNDS,
    QUICK_ROUNDS,
    SCHEMA,
    BenchOp,
    OpResult,
    TIER1_OPS,
    build_document,
    calibrate,
    env_fingerprint,
    load_document,
    ops_by_name,
    results_table,
    run_op,
    run_suite,
    validate_document,
    write_document,
)
from repro.perf.compare import (
    DEFAULT_TOLERANCE,
    CompareReport,
    MissingBaselineError,
    OpComparison,
    compare_documents,
    compare_to_baseline,
    tolerance_for,
)
from repro.perf.profiler import SpanStat, WallProfiler
from repro.perf.report import correlation_report, correlation_rows

__all__ = [
    "FULL_ROUNDS",
    "QUICK_ROUNDS",
    "SCHEMA",
    "BenchOp",
    "OpResult",
    "TIER1_OPS",
    "build_document",
    "calibrate",
    "env_fingerprint",
    "load_document",
    "ops_by_name",
    "results_table",
    "run_op",
    "run_suite",
    "validate_document",
    "write_document",
    "DEFAULT_TOLERANCE",
    "CompareReport",
    "MissingBaselineError",
    "OpComparison",
    "compare_documents",
    "compare_to_baseline",
    "tolerance_for",
    "SpanStat",
    "WallProfiler",
    "correlation_report",
    "correlation_rows",
]
