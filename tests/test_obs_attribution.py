"""Acceptance: traced measurements attribute every simulated nanosecond.

The ISSUE's invariant: on the Fig 1a workload, the per-subsystem span
totals of an exported Chrome trace must sum to within 1% of
``Kernel.measure().elapsed_ns``.  The live attribution table is exact by
construction (the root ``measure`` span covers the whole region); the
exported JSON only rounds through microsecond floats.
"""

import os

import pytest

from repro.kernel import Kernel, MachineConfig
from repro.obs.export import load_chrome_trace, subsystem_self_times
from repro.units import GIB, KIB, MIB
from repro.vm.vma import MapFlags


def fresh_kernel():
    return Kernel(MachineConfig(dram_bytes=512 * MIB, nvm_bytes=2 * GIB))


def fig1a_populate(kernel, size):
    """Fig 1a workload: mmap a tmpfs file with MAP_POPULATE, traced."""
    process = kernel.spawn("fig1a")
    sys_calls = kernel.syscalls(process)
    fd = sys_calls.open(kernel.tmpfs, "/fig1a", create=True, size=size)
    with kernel.measure(trace=True) as m:
        sys_calls.mmap(size, fd=fd, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
    return m, process


class TestAttributionInvariant:
    def test_live_attribution_sums_exactly_to_elapsed(self):
        kernel = fresh_kernel()
        m, _process = fig1a_populate(kernel, 1024 * KIB)
        assert m.elapsed_ns > 0
        assert sum(m.attribution.values()) == m.elapsed_ns
        assert sum(m.subsystem_totals().values()) == m.elapsed_ns

    def test_exported_trace_within_one_percent(self, tmp_path):
        kernel = fresh_kernel()
        m, _process = fig1a_populate(kernel, 1024 * KIB)
        path = str(tmp_path / "fig1a.json")
        assert m.write_trace(path) > 0
        totals = subsystem_self_times(load_chrome_trace(path))
        recovered = sum(totals.values())
        assert abs(recovered - m.elapsed_ns) <= m.elapsed_ns * 0.01

    def test_demand_access_attribution_dominated_by_faults(self, tmp_path):
        kernel = fresh_kernel()
        process = kernel.spawn("demand")
        sys_calls = kernel.syscalls(process)
        size = 256 * KIB
        va = sys_calls.mmap(size)
        with kernel.measure(trace=True) as m:
            kernel.access_range(process, va, size)
        totals = m.subsystem_totals()
        assert sum(totals.values()) == m.elapsed_ns
        assert totals["fault"] > totals.get("cpu", 0)
        # the exported stream agrees with the live table
        path = str(tmp_path / "demand.json")
        m.write_trace(path)
        exported = subsystem_self_times(load_chrome_trace(path))
        assert abs(sum(exported.values()) - m.elapsed_ns) <= m.elapsed_ns * 0.01

    def test_attribution_names_processes(self):
        kernel = fresh_kernel()
        m, process = fig1a_populate(kernel, 64 * KIB)
        assert kernel.tracer.process_names[process.pid] == "fig1a"
        pids = {pid for pid, _subsystem in m.attribution}
        # the measure root runs as the kernel, the workload as the process
        assert 0 in pids

    @pytest.mark.skipif(
        bool(os.environ.get("REPRO_PROFILE")),
        reason="REPRO_PROFILE arms every Kernel with tracing enabled",
    )
    def test_untraced_measure_has_no_attribution(self):
        kernel = fresh_kernel()
        process = kernel.spawn("plain")
        sys_calls = kernel.syscalls(process)
        va = sys_calls.mmap(64 * KIB)
        with kernel.measure() as m:
            kernel.access_range(process, va, 64 * KIB)
        assert m.attribution == {}
        assert m.events == []
        assert not kernel.tracer.enabled
