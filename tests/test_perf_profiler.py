"""WallProfiler: attribution mirror, exports, and zero unarmed overhead."""

from __future__ import annotations

import os
import pstats

import pytest

#: tests/conftest.py arms a profiler on every Kernel under REPRO_PROFILE;
#: the "unarmed by default" pins are meaningless in that mode.
SUITE_ARMED = bool(os.environ.get("REPRO_PROFILE"))

from repro.kernel import Kernel, MachineConfig
from repro.perf import WallProfiler, correlation_report, correlation_rows
from repro.units import MIB, PAGE_SIZE
from repro.vm.vma import MapFlags


class FakeClock:
    """Deterministic wall clock: each read advances by ``step`` ns."""

    def __init__(self, step: int = 100) -> None:
        self.now = 0
        self.step = step

    def __call__(self) -> int:
        self.now += self.step
        return self.now


def make_kernel() -> Kernel:
    return Kernel(MachineConfig(dram_bytes=64 * MIB, nvm_bytes=64 * MIB))


def run_workload(kernel: Kernel) -> int:
    process = kernel.spawn("w")
    sys = kernel.syscalls(process)
    size = 32 * PAGE_SIZE
    va = sys.mmap(size, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
    with kernel.measure() as m:
        kernel.access_range(process, va, size)
        sys.munmap(va, size)
    return m.elapsed_ns


# ----------------------------------------------------------------------
# Direct hook behaviour under a fake clock
# ----------------------------------------------------------------------
class TestHooks:
    def test_flat_span_self_time(self):
        profiler = WallProfiler(clock_ns=FakeClock(step=100))
        profiler.on_begin("walk", "vm", 1)
        profiler.on_end()
        # begin reads once, end reads once -> elapsed exactly one step.
        assert profiler.attribution == {(1, "vm"): 100}
        assert profiler.total_ns == 100
        assert profiler.spans == 1

    def test_nested_spans_charge_self_not_cum(self):
        profiler = WallProfiler(clock_ns=FakeClock(step=100))
        profiler.on_begin("outer", "kernel", 1)  # t=100
        profiler.on_begin("inner", "vm", 1)  # t=200
        profiler.on_end()  # t=300: inner elapsed 100
        profiler.on_end()  # t=400: outer elapsed 300, child 100
        assert profiler.attribution[(1, "vm")] == 100
        assert profiler.attribution[(1, "kernel")] == 200
        outer = profiler.span_stats["kernel:outer"]
        inner = profiler.span_stats["vm:inner"]
        assert (outer.self_ns, outer.cum_ns) == (200, 300)
        assert (inner.self_ns, inner.cum_ns) == (100, 100)
        # Caller arc: inner was called once from outer, 100ns cumulative.
        assert inner.callers == {"kernel:outer": [1, 100]}

    def test_collapsed_paths_follow_stack(self):
        profiler = WallProfiler(clock_ns=FakeClock(step=10))
        profiler.on_begin("a", "s1", 1)
        profiler.on_begin("b", "s2", 1)
        profiler.on_end()
        profiler.on_end()
        assert set(profiler.path_self_ns) == {"s1:a", "s1:a;s2:b"}
        for line in profiler.collapsed_lines():
            stack, value = line.rsplit(" ", 1)
            assert stack in profiler.path_self_ns
            assert int(value) >= 0

    def test_unmatched_end_is_ignored(self):
        profiler = WallProfiler(clock_ns=FakeClock())
        profiler.on_end()  # no open frame: must not raise
        assert profiler.spans == 0

    def test_clear_drops_everything(self):
        profiler = WallProfiler(clock_ns=FakeClock())
        profiler.on_begin("x", "s", 1)
        profiler.on_end()
        profiler.clear()
        assert profiler.attribution == {}
        assert profiler.path_self_ns == {}
        assert profiler.span_stats == {}
        assert profiler.spans == 0


# ----------------------------------------------------------------------
# Kernel integration: arming, mirroring, disarming
# ----------------------------------------------------------------------
class TestArming:
    @pytest.mark.skipif(SUITE_ARMED, reason="REPRO_PROFILE arms every Kernel")
    def test_unarmed_by_default(self):
        kernel = make_kernel()
        assert kernel.profiler is None
        assert kernel.counters.profiler is None
        assert kernel.tracer.profiler is None

    def test_arm_wires_all_back_references(self):
        kernel = make_kernel()
        profiler = kernel.arm_profiler()
        assert isinstance(profiler, WallProfiler)
        assert kernel.profiler is profiler
        assert kernel.counters.profiler is profiler
        assert kernel.tracer.profiler is profiler
        assert kernel.tracer.enabled

    def test_disarm_restores_none(self):
        kernel = make_kernel()
        kernel.arm_profiler()
        kernel.disarm_profiler()
        assert kernel.profiler is None
        assert kernel.counters.profiler is None
        assert kernel.tracer.profiler is None

    def test_wall_attribution_mirrors_sim_attribution_keys(self):
        kernel = make_kernel()
        profiler = kernel.arm_profiler()
        run_workload(kernel)
        assert profiler.spans > 0
        # Same (pid, subsystem) key space as the tracer's simulated-cost
        # attribution — that is what makes the correlation report line up.
        assert set(profiler.attribution) == set(kernel.tracer.attribution)
        assert all(ns >= 0 for ns in profiler.attribution.values())

    def test_correlation_report_renders(self):
        kernel = make_kernel()
        profiler = kernel.arm_profiler()
        run_workload(kernel)
        rows = correlation_rows(
            kernel.tracer.attribution,
            profiler.attribution,
            kernel.tracer.process_names,
        )
        assert rows
        report = correlation_report(
            kernel.tracer.attribution,
            profiler.attribution,
            kernel.tracer.process_names,
        )
        for subsystem, _process, _sim, _wall, _ratio in rows:
            assert subsystem in report


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
class TestExports:
    def test_write_collapsed(self, tmp_path):
        kernel = make_kernel()
        profiler = kernel.arm_profiler()
        run_workload(kernel)
        path = tmp_path / "profile.folded"
        count = profiler.write_collapsed(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == count > 0
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert ";" not in value and int(value) >= 0
            assert all(":" in frame for frame in stack.split(";"))

    def test_pstats_file_loads(self, tmp_path):
        kernel = make_kernel()
        profiler = kernel.arm_profiler()
        run_workload(kernel)
        path = tmp_path / "profile.pstats"
        entries = profiler.write_pstats(str(path))
        stats = pstats.Stats(str(path))
        assert len(stats.stats) == entries > 0
        total_tt = sum(entry[2] for entry in stats.stats.values())
        assert total_tt == pytest.approx(profiler.total_ns / 1e9)


# ----------------------------------------------------------------------
# Zero overhead when unarmed (the subsystem's core invariant)
# ----------------------------------------------------------------------
class TestZeroOverhead:
    def test_sim_results_identical_armed_vs_unarmed(self):
        # Arming attributes *wall* time only; the simulated clock must
        # come out bit-identical.
        plain = run_workload(make_kernel())
        armed_kernel = make_kernel()
        armed_kernel.arm_profiler()
        armed = run_workload(armed_kernel)
        assert plain == armed

    @pytest.mark.skipif(SUITE_ARMED, reason="REPRO_PROFILE arms every Kernel")
    def test_import_alone_changes_nothing(self):
        # repro.perf is imported at module top; a fresh unarmed kernel
        # still runs with tracer disabled and no profiler hooks.
        kernel = make_kernel()
        elapsed = run_workload(kernel)
        assert kernel.tracer.profiler is None
        assert not kernel.tracer.enabled
        assert elapsed == run_workload(make_kernel())
