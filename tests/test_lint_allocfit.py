"""Empirical allocation cross-check: repro.lint.allocfit.

Covers the tracemalloc measurement core (warmup discrimination and the
LRU-churn artifact the measurement must not mistake for a leak), the
judgment logic (planted control inversion, uncertified-name
detection), the registry, and the certified TLB-hit op end to end.
"""

from collections import OrderedDict

import pytest

from repro.lint.allocfit import (
    ALLOC_OPS,
    AllocOp,
    measure_net_growth,
    ops_by_name,
    run_alloc_op,
    run_allocfit,
)
from repro.lint.decorators import iter_alloc_declarations


# ---------------------------------------------------------------------------
# Measurement core
# ---------------------------------------------------------------------------
class TestMeasureNetGrowth:
    def test_steady_state_fn_nets_zero(self):
        counter = [0]

        def step():
            counter[0] += 1

        net, _gc = measure_net_growth(step, warmup=16, calls=1024)
        assert abs(net) / 1024 < 8.0

    def test_retaining_fn_grows(self):
        sink = []

        def step():
            sink.append(object())

        net, _gc = measure_net_growth(step, warmup=16, calls=1024)
        assert net / 1024 > 8.0

    def test_warmup_absorbs_first_call_caching(self):
        """A transient-phase fill (memo tables, counter keys) must land
        in the warmup, not the measurement window."""
        def fresh():
            cache = {}
            cursor = [0]

            def step():
                index = cursor[0] % 256
                cursor[0] += 1
                if index not in cache:
                    cache[index] = [index] * 8
                return cache[index]

            return step

        warm_net, _ = measure_net_growth(fresh(), warmup=300, calls=1024)
        cold_net, _ = measure_net_growth(fresh(), warmup=0, calls=1024)
        assert abs(warm_net) / 1024 < 8.0
        # Without warmup the fill happens inside the window; the same
        # fill measured cold must register, or the harness is blind.
        assert cold_net > warm_net + 1024

    def test_lru_churn_is_not_a_leak(self):
        """Bounded-capacity replacement (TLB sets, cache LRU) must net
        zero.  This is the regression the trace-before-warmup order
        exists for: tracemalloc only credits frees of blocks it saw
        allocated, so warming untraced makes one full working-set
        cycle of churn look like retention."""
        capacity = 64
        lru: "OrderedDict[int, list]" = OrderedDict()
        cursor = [0]

        def step():
            key = cursor[0]
            cursor[0] += 1
            lru[key] = [key] * 8
            if len(lru) > capacity:
                lru.popitem(last=False)

        net, _gc = measure_net_growth(step, warmup=256, calls=4096)
        assert abs(net) / 4096 < 8.0


# ---------------------------------------------------------------------------
# Judgment
# ---------------------------------------------------------------------------
def _op(prepare, certified=(), **kwargs) -> AllocOp:
    defaults = dict(name="test.op", warmup=16, calls=512)
    defaults.update(kwargs)
    return AllocOp(prepare=prepare, certified=tuple(certified), **defaults)


class TestJudgment:
    def test_clean_op_passes(self):
        result = run_alloc_op(_op(lambda: (lambda: None)))
        assert result.ok and not result.grew
        assert result.calls == 512

    def test_retaining_op_fails(self):
        def prepare():
            sink = []
            return lambda: sink.append(object())

        result = run_alloc_op(_op(prepare))
        assert result.grew and not result.ok

    def test_control_inverts_the_judgment(self):
        def prepare():
            sink = []
            return lambda: sink.append(object())

        result = run_alloc_op(_op(prepare, expect_growth=True))
        assert result.grew and result.ok
        # A control that stops growing means the harness is broken.
        clean = run_alloc_op(_op(lambda: (lambda: None), expect_growth=True))
        assert not clean.ok

    def test_uncertified_name_fails_even_when_clean(self):
        result = run_alloc_op(
            _op(lambda: (lambda: None), certified=("pkg.not.registered",))
        )
        assert not result.grew
        assert result.uncertified == ("pkg.not.registered",)
        assert not result.ok

    def test_format_mentions_verdict_and_kind(self):
        result = run_alloc_op(_op(lambda: (lambda: None)))
        line = result.format()
        assert "ok" in line and "certified" in line
        control = run_alloc_op(
            _op(lambda: (lambda: None), expect_growth=True)
        )
        assert "FAIL" in control.format()
        assert "control" in control.format()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_registry_has_the_hit_miss_and_control_ops(self):
        names = [op.name for op in ALLOC_OPS]
        assert "access.tlb_hit" in names
        assert "access.tlb_miss_walk" in names
        assert "control.allocfree_retaining" in names

    def test_exactly_one_planted_control(self):
        controls = [op for op in ALLOC_OPS if op.expect_growth]
        assert [op.name for op in controls] == ["control.allocfree_retaining"]

    def test_certified_names_resolve_to_declarations(self):
        """Static and empirical prongs must agree on what is certified:
        every name an op claims must carry @allocfree/@allocbound."""
        import repro.hw.cache  # noqa: F401
        import repro.hw.clock  # noqa: F401
        import repro.hw.cpu  # noqa: F401
        import repro.hw.tlb  # noqa: F401
        import repro.kernel.kernel  # noqa: F401
        import repro.lint.controls  # noqa: F401
        import repro.paging.walker  # noqa: F401

        registered = {d.function for d in iter_alloc_declarations()}
        for op in ALLOC_OPS:
            missing = [n for n in op.certified if n not in registered]
            assert not missing, f"{op.name} claims undeclared {missing}"

    def test_ops_by_name_filters_and_rejects_unknown(self):
        (only,) = ops_by_name(["access.tlb_hit"])
        assert only.name == "access.tlb_hit"
        assert ops_by_name(None) == list(ALLOC_OPS)
        with pytest.raises(KeyError, match="unknown alloc ops"):
            ops_by_name(["access.no_such_op"])


# ---------------------------------------------------------------------------
# End to end: the registry's own ops
# ---------------------------------------------------------------------------
class TestRegisteredOps:
    def test_planted_control_fires(self):
        (result,) = run_allocfit(names=["control.allocfree_retaining"])
        assert result.expect_growth and result.grew and result.ok
        assert result.per_call_bytes > 8.0

    def test_certified_tlb_hit_is_allocation_free(self):
        """The headline certificate: a TLB-warm access nets ~0 bytes."""
        lines = []
        (result,) = run_allocfit(
            names=["access.tlb_hit"], progress=lines.append
        )
        assert result.ok and not result.grew
        assert result.uncertified == ()
        assert abs(result.per_call_bytes) < 8.0
        assert lines and "access.tlb_hit" in lines[0]
