"""Huge-page tiling: alignment rules and PTE economy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.paging.hugepages import (
    SUPPORTED_PAGE_SIZES,
    choose_page_runs,
    largest_page_for,
    page_count_for_tiling,
)
from repro.units import GIB, HUGE_PAGE_1G, HUGE_PAGE_2M, KIB, MIB, PAGE_SIZE


class TestLargestPageFor:
    def test_aligned_2m(self):
        assert largest_page_for(0, 0, 2 * MIB) == HUGE_PAGE_2M

    def test_aligned_1g(self):
        assert largest_page_for(0, 0, GIB) == HUGE_PAGE_1G

    def test_misaligned_virtual_forces_small(self):
        assert largest_page_for(PAGE_SIZE, 0, 2 * MIB) == PAGE_SIZE

    def test_misaligned_physical_forces_small(self):
        # Both sides must be aligned — the paper's "alignment restrictions".
        assert largest_page_for(0, PAGE_SIZE, 2 * MIB) == PAGE_SIZE

    def test_insufficient_remaining_forces_small(self):
        assert largest_page_for(0, 0, 2 * MIB - PAGE_SIZE) == PAGE_SIZE

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            largest_page_for(0, 0, PAGE_SIZE - 1)

    def test_restricted_allowed_set(self):
        assert largest_page_for(0, 0, GIB, allowed=(PAGE_SIZE,)) == PAGE_SIZE


class TestChoosePageRuns:
    def test_aligned_4m_uses_two_2m(self):
        runs = list(choose_page_runs(0, 0, 4 * MIB))
        assert [size for _, _, size in runs] == [HUGE_PAGE_2M, HUGE_PAGE_2M]

    def test_head_tail_fragments(self):
        # Region starting 4 KiB off alignment: small pages lead until a
        # 2 MiB boundary, then huge, then small tail.
        start = HUGE_PAGE_2M - PAGE_SIZE
        runs = list(choose_page_runs(start, start, 2 * MIB + 2 * PAGE_SIZE))
        sizes = [size for _, _, size in runs]
        assert sizes[0] == PAGE_SIZE
        assert HUGE_PAGE_2M in sizes
        assert sizes[-1] == PAGE_SIZE

    def test_virtual_physical_skew_prevents_huge(self):
        # VA aligned but PA off by one page: no huge pages possible.
        runs = list(choose_page_runs(0, PAGE_SIZE, 4 * MIB))
        assert all(size == PAGE_SIZE for _, _, size in runs)

    def test_addresses_advance_in_lockstep(self):
        runs = list(choose_page_runs(0, 8 * MIB, 4 * MIB))
        for va, pa, _ in runs:
            assert pa - va == 8 * MIB

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            list(choose_page_runs(0, 0, 100))
        with pytest.raises(ValueError):
            list(choose_page_runs(0, 0, 0))

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            list(choose_page_runs(1, 0, PAGE_SIZE))


class TestPteEconomy:
    def test_paper_claim_512x_reduction(self):
        # 2 MiB aligned region: 512x fewer PTEs than 4 KiB paging.
        small = page_count_for_tiling(0, 0, 2 * MIB, allowed=(PAGE_SIZE,))
        huge = page_count_for_tiling(0, 0, 2 * MIB)
        assert small == 512 and huge == 1

    def test_gigabyte_region_single_pte(self):
        assert page_count_for_tiling(0, 0, GIB) == 1

    @given(st.integers(1, 2048))
    @settings(max_examples=40)
    def test_tiling_covers_exactly(self, npages):
        """Any aligned tiling covers the region exactly once."""
        length = npages * PAGE_SIZE
        covered = 0
        prev_end = 0
        for va, pa, size in choose_page_runs(0, 0, length):
            assert va == prev_end
            assert va % size == 0 and pa % size == 0
            covered += size
            prev_end = va + size
        assert covered == length
