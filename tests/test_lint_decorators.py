"""Complexity declaration decorators."""

import pytest

from repro.lint.decorators import (
    ComplexityClass,
    declared_complexity,
    iter_declarations,
    o1,
)
from repro.lint import complexity


class TestComplexityClass:
    def test_parse_aliases(self):
        assert ComplexityClass.parse("1") is ComplexityClass.CONSTANT
        assert ComplexityClass.parse("O(1)") is ComplexityClass.CONSTANT
        assert ComplexityClass.parse("constant") is ComplexityClass.CONSTANT
        assert ComplexityClass.parse("log n") is ComplexityClass.LOG
        assert ComplexityClass.parse("O(log n)") is ComplexityClass.LOG
        assert ComplexityClass.parse("n") is ComplexityClass.LINEAR
        assert ComplexityClass.parse("linear") is ComplexityClass.LINEAR
        assert ComplexityClass.parse("n log n") is ComplexityClass.LINEARITHMIC

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown complexity"):
            ComplexityClass.parse("n^2")

    def test_order_sorts_by_growth(self):
        classes = sorted(ComplexityClass, key=lambda k: k.order)
        assert classes == [
            ComplexityClass.CONSTANT,
            ComplexityClass.LOG,
            ComplexityClass.LINEAR,
            ComplexityClass.LINEARITHMIC,
        ]


class TestDecorators:
    def test_o1_bare(self):
        @o1
        def fn():
            return 42

        assert fn() == 42
        assert declared_complexity(fn) is ComplexityClass.CONSTANT

    def test_o1_with_note(self):
        @o1(note="one pointer write")
        def fn():
            return 42

        assert fn() == 42
        assert fn.__complexity_note__ == "one pointer write"

    def test_complexity_decorator(self):
        @complexity("log n", note="binary search")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert declared_complexity(fn) is ComplexityClass.LOG

    def test_complexity_rejects_bad_class_eagerly(self):
        with pytest.raises(ValueError):
            complexity("exponential")

    def test_undecorated_returns_none(self):
        def fn():
            pass

        assert declared_complexity(fn) is None

    def test_decorator_does_not_wrap(self):
        # Zero runtime cost: the original function object comes back.
        def fn():
            pass

        assert o1(fn) is fn

    def test_registry_records_declarations(self):
        @o1(note="registry check")
        def registered_fn():
            pass

        names = [d.qualname for d in iter_declarations()]
        assert any("registered_fn" in name for name in names)

    def test_codebase_declarations_registered(self):
        # Importing the kernel pulls in every annotated module.
        import repro.kernel.kernel  # noqa: F401

        decls = list(iter_declarations())
        assert len(decls) >= 40
        constants = [
            d for d in decls if d.declared is ComplexityClass.CONSTANT
        ]
        assert len(constants) >= 20
