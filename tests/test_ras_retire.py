"""Frame retirement: buddy quarantine, badblock journal, crash safety."""

from __future__ import annotations

import pytest

from repro.errors import SimulatedCrashError
from repro.ras import BADBLOCK_PATH, FaultKind, MediaFaultModel
from repro.units import PAGE_SIZE


@pytest.fixture
def ras_kernel(kernel):
    kernel.arm_ras(model=MediaFaultModel(seed=0, faults_per_bind=0))
    return kernel


def _free_nvm_pfn(kernel) -> int:
    fs = kernel.pmfs
    first = kernel.nvm_region.first_pfn
    return next(
        pfn
        for pfn in range(first, first + 4096)
        if fs.allocator.block_is_free(pfn)
    )


class TestDramRetirement:
    def test_retire_free_frame(self, buddy):
        pfn = buddy.alloc(0)
        buddy.free(pfn)
        assert buddy.retire(pfn)
        assert pfn in buddy.retired_frames

    def test_retired_frame_never_reallocated(self, buddy):
        pfn = buddy.alloc(0)
        buddy.free(pfn)
        assert buddy.retire(pfn)
        seen = {buddy.alloc(0) for _ in range(64)}
        assert pfn not in seen

    def test_free_of_retired_frame_is_refused(self, buddy):
        pfn = buddy.alloc(0)
        buddy.free(pfn)
        buddy.retire(pfn)
        with pytest.raises(ValueError):
            buddy.free(pfn)

    def test_busy_frame_not_retired(self, buddy):
        pfn = buddy.alloc(0)
        assert not buddy.retire(pfn)
        assert pfn not in buddy.retired_frames
        buddy.free(pfn)
        assert buddy.retire(pfn)

    def test_retire_is_idempotent(self, buddy):
        pfn = buddy.alloc(0)
        buddy.free(pfn)
        free_before = buddy.free_frames
        assert buddy.retire(pfn)
        assert buddy.retire(pfn)
        assert buddy.free_frames == free_before - 1


class TestNvmRetirement:
    def test_free_block_adopted_onto_badblock_list(self, ras_kernel):
        kernel = ras_kernel
        pfn = _free_nvm_pfn(kernel)
        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        assert kernel.ras.retire_frame(pfn)
        assert pfn in kernel.ras.badblock_pfns()
        assert pfn in kernel.ras.model.retired
        assert not kernel.pmfs.allocator.block_is_free(pfn)
        assert kernel.pmfs.fsck() == []

    def test_migration_preserves_file_contents(self, ras_kernel):
        kernel = ras_kernel
        fs = kernel.pmfs
        process = kernel.spawn("writer")
        sys_calls = kernel.syscalls(process)
        fd = sys_calls.open(fs, "/data", create=True, size=2 * PAGE_SIZE)
        payload = b"survives migration"
        sys_calls.pwrite(fd, 0, payload)
        old_pfn = fs.charge_block_lookup(fs.lookup("/data"), 0)

        kernel.ras.model.inject(old_pfn, FaultKind.DEAD)
        assert kernel.ras.retire_frame(old_pfn)

        new_pfn = fs.charge_block_lookup(fs.lookup("/data"), 0)
        assert new_pfn != old_pfn
        assert sys_calls.pread(fd, 0, len(payload)) == payload
        assert old_pfn in kernel.ras.badblock_pfns()
        assert kernel.counters.get("ras_extent_migrated") == 1
        assert fs.fsck() == []

    def test_badblock_list_survives_plain_crash(self, ras_kernel):
        kernel = ras_kernel
        pfn = _free_nvm_pfn(kernel)
        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        assert kernel.ras.retire_frame(pfn)
        kernel.crash()
        assert kernel.pmfs.exists(BADBLOCK_PATH)
        assert pfn in kernel.ras.badblock_pfns()
        assert kernel.pmfs.fsck() == []

    def test_audit_flags_unretired_dead_and_unpersisted_retirement(
        self, ras_kernel
    ):
        kernel = ras_kernel
        pfn = _free_nvm_pfn(kernel)
        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        assert any(
            "still in service" in problem
            for problem in kernel.ras.audit()
        )
        # Retiring only in the model (no PMFS adoption) is the other
        # half of the invariant: retired NVM frames must be persisted.
        kernel.ras.model.retire(pfn)
        assert any(
            "missing from the persisted badblock list" in problem
            for problem in kernel.ras.audit()
        )
        assert kernel.ras.retire_frame(pfn) or True  # repair for symmetry


class TestCrashDuringRetirement:
    def test_crash_before_commit_rolls_adoption_back(self, ras_kernel):
        kernel = ras_kernel
        fs = kernel.pmfs
        pfn = _free_nvm_pfn(kernel)
        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        free_before = fs.allocator.free_blocks

        fs.schedule_crash(0)  # first journaled write of the adoption
        with pytest.raises(SimulatedCrashError):
            kernel.ras.retire_frame(pfn)
        kernel.crash()

        # Undo: the half-adopted block is not leaked and the fault is
        # still live, so the retry completes the retirement.
        assert fs.fsck() == []
        assert fs.allocator.free_blocks == free_before
        assert kernel.ras.model.probe(pfn) is not None
        assert kernel.ras.retire_frame(pfn)
        assert pfn in kernel.ras.badblock_pfns()
        assert fs.fsck() == []

    def test_crash_after_commit_replays_adoption(self, ras_kernel):
        kernel = ras_kernel
        fs = kernel.pmfs
        pfn = _free_nvm_pfn(kernel)
        kernel.ras.model.inject(pfn, FaultKind.DEAD)

        fs.schedule_crash(2)  # committed but not applied: redo window
        with pytest.raises(SimulatedCrashError):
            kernel.ras.retire_frame(pfn)
        kernel.crash()

        # Redo: recovery finishes the adoption from the journal.
        assert pfn in kernel.ras.badblock_pfns()
        assert not fs.allocator.block_is_free(pfn)
        assert fs.fsck() == []

    def test_crash_during_migration_recovers_consistent_file(
        self, ras_kernel
    ):
        kernel = ras_kernel
        fs = kernel.pmfs
        process = kernel.spawn("writer")
        sys_calls = kernel.syscalls(process)
        sys_calls.open(fs, "/victim", create=True, size=2 * PAGE_SIZE)
        old_pfn = fs.charge_block_lookup(fs.lookup("/victim"), 0)
        kernel.ras.model.inject(old_pfn, FaultKind.DEAD)
        # Create the badblock file first so the scheduled crash lands in
        # the migration transaction itself, not the list's creation.
        kernel.ras.badblock_inode()

        fs.schedule_crash(0)
        with pytest.raises(SimulatedCrashError):
            kernel.ras.retire_frame(old_pfn)
        kernel.crash()

        # Whatever window the crash hit, the file system is coherent
        # and the retirement can be completed afterwards.
        assert fs.fsck() == []
        assert kernel.ras.retire_frame(old_pfn)
        assert old_pfn in kernel.ras.badblock_pfns()
        assert fs.fsck() == []
