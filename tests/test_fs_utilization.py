"""Utilization model: the Agrawal-study fleet shape."""

import pytest

from repro.fs.utilization import UtilizationModel
from repro.units import GIB


class TestMachineLifecycle:
    def test_utilization_in_unit_interval(self):
        model = UtilizationModel(seed=1)
        for epochs in (0, 10, 50, 100):
            utilization = model.machine_utilization(epochs)
            assert 0.0 <= utilization <= 1.0

    def test_deterministic_given_seed(self):
        a = UtilizationModel(seed=7).sample_fleet(50)
        b = UtilizationModel(seed=7).sample_fleet(50)
        assert a == b

    def test_different_seeds_differ(self):
        a = UtilizationModel(seed=1).sample_fleet(50)
        b = UtilizationModel(seed=2).sample_fleet(50)
        assert a != b

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            UtilizationModel(replace_threshold=0.0)
        with pytest.raises(ValueError):
            UtilizationModel(growth_factor=1.0)
        with pytest.raises(ValueError):
            UtilizationModel().sample_fleet(0)


class TestFleetStats:
    def test_paper_band_mean_below_55_percent(self):
        # §2 / Agrawal: "mean and median file system utilization was below
        # 50%"; our replacement-lifecycle model must land in that regime.
        stats = UtilizationModel(seed=2017).fleet_stats(machines=500)
        assert 0.20 <= stats.mean_utilization <= 0.55
        assert 0.20 <= stats.median_utilization <= 0.60

    def test_excess_capacity_positive_and_consistent(self):
        stats = UtilizationModel(seed=3).fleet_stats(
            machines=100, capacity_bytes=6 * 1024 * GIB
        )
        assert stats.excess_capacity_bytes > 0
        assert (
            stats.total_used_bytes + stats.excess_capacity_bytes
            == stats.total_capacity_bytes
        )

    def test_median_computed_for_even_and_odd(self):
        even = UtilizationModel(seed=4).fleet_stats(machines=10)
        odd = UtilizationModel(seed=4).fleet_stats(machines=11)
        assert 0.0 <= even.median_utilization <= 1.0
        assert 0.0 <= odd.median_utilization <= 1.0
