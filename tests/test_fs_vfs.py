"""VFS: paths, directories, handles, read/write semantics."""

import pytest

from repro.errors import (
    BadFileDescriptorError,
    FileExistsError_,
    FileNotFoundError_,
    FileSystemError,
)
from repro.units import KIB, PAGE_SIZE


@pytest.fixture
def fs(kernel):
    return kernel.tmpfs


class TestPaths:
    def test_create_and_lookup(self, fs):
        inode = fs.create("/a", size=4 * KIB)
        assert fs.lookup("/a") is inode
        assert fs.exists("/a")

    def test_nested_directories(self, fs):
        fs.mkdir("/d")
        fs.mkdir("/d/e")
        inode = fs.create("/d/e/f")
        assert fs.lookup("/d/e/f") is inode

    def test_missing_path_raises(self, fs):
        with pytest.raises(FileNotFoundError_):
            fs.lookup("/nope")
        with pytest.raises(FileNotFoundError_):
            fs.create("/no/such/dir")

    def test_duplicate_create_rejected(self, fs):
        fs.create("/a")
        with pytest.raises(FileExistsError_):
            fs.create("/a")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.lookup("a")

    def test_path_walk_charges_per_component(self, fs, kernel):
        fs.mkdir("/x")
        fs.mkdir("/x/y")
        fs.create("/x/y/z")
        shallow_cost = kernel.measure()
        with shallow_cost:
            fs.lookup("/x")
        deep_cost = kernel.measure()
        with deep_cost:
            fs.lookup("/x/y/z")
        assert deep_cost.elapsed_ns > shallow_cost.elapsed_ns

    def test_unlink_removes(self, fs):
        fs.create("/gone", size=PAGE_SIZE)
        fs.unlink("/gone")
        assert not fs.exists("/gone")

    def test_unlink_missing_raises(self, fs):
        with pytest.raises(FileNotFoundError_):
            fs.unlink("/absent")

    def test_unlink_nonempty_dir_rejected(self, fs):
        fs.mkdir("/d")
        fs.create("/d/f")
        with pytest.raises(FileSystemError, match="not empty"):
            fs.unlink("/d")

    def test_iter_files(self, fs):
        fs.create("/a")
        fs.mkdir("/d")
        fs.create("/d/b")
        paths = sorted(path for path, _ in fs.iter_files())
        assert paths == ["/a", "/d/b"]

    def test_file_count_and_used_bytes(self, fs):
        fs.create("/a", size=8 * KIB)
        fs.create("/b", size=1)
        assert fs.file_count() == 2
        assert fs.used_bytes() == 8 * KIB + PAGE_SIZE


class TestHandles:
    def test_open_missing_without_create_raises(self, fs):
        with pytest.raises(FileNotFoundError_):
            fs.open("/missing")

    def test_open_create(self, fs):
        handle = fs.open("/new", create=True, size=4 * KIB)
        assert handle.inode.size == 4 * KIB
        assert handle.inode.refcount == 1
        handle.close()
        assert handle.inode.refcount == 0

    def test_open_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileSystemError):
            fs.open("/d")

    def test_closed_handle_rejected(self, fs):
        handle = fs.open("/f", create=True)
        handle.close()
        with pytest.raises(BadFileDescriptorError):
            handle.read(1)

    def test_context_manager_closes(self, fs):
        with fs.open("/cm", create=True) as handle:
            inode = handle.inode
        assert inode.refcount == 0


class TestReadWrite:
    def test_write_then_read_roundtrip(self, fs):
        with fs.open("/data", create=True) as handle:
            handle.write(b"hello world")
            handle.seek(0)
            assert handle.read(11) == b"hello world"

    def test_read_past_eof_short(self, fs):
        with fs.open("/short", create=True) as handle:
            handle.write(b"abc")
            handle.seek(0)
            assert handle.read(100) == b"abc"
            assert handle.read(1) == b""

    def test_pread_pwrite_do_not_move_offset(self, fs):
        with fs.open("/pp", create=True) as handle:
            handle.pwrite(10, b"xy")
            assert handle.pos == 0
            assert handle.pread(10, 2) == b"xy"

    def test_sparse_read_returns_zeros(self, fs):
        with fs.open("/sparse", create=True, size=2 * PAGE_SIZE) as handle:
            handle.pwrite(PAGE_SIZE, b"z")
            data = handle.pread(PAGE_SIZE - 2, 4)
            assert data == b"\x00\x00z\x00"

    def test_write_extends_file_and_storage(self, fs):
        with fs.open("/grow", create=True) as handle:
            handle.pwrite(3 * PAGE_SIZE, b"end")
            assert handle.inode.size == 3 * PAGE_SIZE + 3
            assert handle.inode.page_count == 4

    def test_cross_page_write(self, fs):
        with fs.open("/cross", create=True) as handle:
            payload = bytes(range(256)) * 20  # 5120 bytes, crosses a page
            handle.pwrite(PAGE_SIZE - 100, payload)
            assert handle.pread(PAGE_SIZE - 100, len(payload)) == payload

    def test_copy_costs_charged(self, fs, kernel):
        with fs.open("/cost", create=True, size=64 * KIB) as handle:
            with kernel.measure() as small:
                handle.pread(0, 1 * KIB)
            with kernel.measure() as big:
                handle.pread(0, 64 * KIB)
        assert big.elapsed_ns > small.elapsed_ns

    def test_negative_seek_rejected(self, fs):
        with fs.open("/seek", create=True) as handle:
            with pytest.raises(FileSystemError):
                handle.seek(-1)
