"""The limitations the paper concedes, pinned as explicit behaviour.

§3.1: "some operations that depend on page-level mappings, such as guard
pages or copy-on-write, cannot easily be supported", and whole-file
permissions preclude page-granularity mprotect.  These tests document
that the implementation *honestly* refuses those operations (rather than
silently doing per-page work), and show the file-granularity workarounds.
"""

import pytest

from repro.core.fom import FileOnlyMemory, MapStrategy
from repro.errors import MappingError, ProtectionError
from repro.units import KIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags, Protection


@pytest.fixture
def env(aligned_kernel):
    return aligned_kernel, FileOnlyMemory(aligned_kernel)


class TestPageGranularityOperationsRefused:
    def test_no_partial_mprotect_inside_region(self, env):
        # Guard pages need one page of a region made PROT_NONE; FOM
        # permissions are whole-file, so partial mprotect refuses.
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB)
        with pytest.raises(MappingError):
            process.space.mprotect(region.vaddr, PAGE_SIZE, Protection.NONE)

    def test_whole_region_mprotect_allowed(self, env):
        # Whole-file permission change is the supported granularity.
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB)
        process.space.mprotect(region.vaddr, 2 * MIB, Protection.READ)
        with pytest.raises(ProtectionError):
            kernel.access(process, region.vaddr, write=True)

    def test_no_hole_punching_in_regions(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 4 * MIB)
        with pytest.raises(MappingError):
            process.space.munmap(region.vaddr + 1 * MIB, 1 * MIB)

    def test_cow_mapping_of_fom_file_goes_through_vm_layer(self, env):
        # Private (COW) mappings of file data are possible — but only via
        # the classic per-page VM path, not FOM's extent mapping; the
        # paper's point is that FOM itself doesn't provide COW.
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB, name="/d", persistent=True)
        fom.release(region)
        sys = kernel.syscalls(process)
        fd = sys.open(kernel.pmfs, "/d")
        va = sys.mmap(2 * MIB, fd=fd, flags=MapFlags.PRIVATE)
        kernel.access(process, va, write=True)  # COW fault, per-page
        assert kernel.counters.get("cow_copy") == 1


class TestFileGranularityWorkarounds:
    def test_guard_via_separate_files(self, env):
        # The workaround for a guarded stack: stack file + unmapped VA
        # gap — overruns hit the gap and segfault, no page tricks needed.
        kernel, fom = env
        process = kernel.spawn("p")
        stack = fom.allocate(process, 2 * MIB)
        gap_va = stack.vaddr + stack.length  # nothing mapped here
        next_region = fom.allocate(process, 2 * MIB)
        assert next_region.vaddr > gap_va  # allocator left the gap
        kernel.access(process, stack.vaddr + stack.length - 1)
        with pytest.raises(ProtectionError):
            kernel.access(process, gap_va)  # the "guard" fires

    def test_vma_merging_lost_but_growth_works(self, env):
        # Paper: Linux merges adjacent regions; FOM loses cross-file
        # merging but regains growth via grow_region (same file).
        kernel, fom = env
        process = kernel.spawn("p")
        a = fom.allocate(process, 2 * MIB)
        b = fom.allocate(process, 2 * MIB)
        assert len(process.space.vmas) == 2  # distinct files never merge
        fom.grow_region(a, 4 * MIB)
        # Growth of one file's region *does* merge (same backing).
        assert len(process.space.vmas) == 2
        assert process.space.vmas[0].length == 4 * MIB
