"""Extent policy: rounding rules and the space-for-time ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.core.o1.policy import ExtentPolicy, SpaceTimeLedger
from repro.units import GIB, HUGE_PAGE_1G, HUGE_PAGE_2M, KIB, MIB, PAGE_SIZE


class TestSpaceTimeLedger:
    def test_records_waste_by_reason(self):
        ledger = SpaceTimeLedger()
        ledger.record(100 * KIB, 2 * MIB, reason="rounding")
        ledger.record(4 * KIB, 4 * KIB, reason="exact")
        assert ledger.wasted_bytes == 2 * MIB - 100 * KIB
        assert ledger.by_reason == {"rounding": 2 * MIB - 100 * KIB}

    def test_overhead_ratio(self):
        ledger = SpaceTimeLedger()
        assert ledger.overhead_ratio == 1.0
        ledger.record(MIB, 2 * MIB, reason="r")
        assert ledger.overhead_ratio == 2.0

    def test_under_allocation_rejected(self):
        with pytest.raises(ValueError):
            SpaceTimeLedger().record(MIB, KIB, reason="r")


class TestExtentPolicy:
    def test_paper_example_hundreds_of_kb_gets_2mb(self):
        # §1: "allocate a large page (e.g., 2MB) when only hundreds of
        # kilobytes are needed".
        policy = ExtentPolicy()
        assert policy.extent_bytes_for(300 * KIB) == HUGE_PAGE_2M

    def test_multi_mb_rounds_to_2mb_multiple(self):
        policy = ExtentPolicy()
        assert policy.extent_bytes_for(3 * MIB) == 4 * MIB

    def test_gigabyte_requests_round_to_1g(self):
        policy = ExtentPolicy()
        assert policy.extent_bytes_for(GIB + 1) == 2 * GIB

    def test_waste_cap_falls_back(self):
        policy = ExtentPolicy(max_waste_ratio=2.0)
        # 4 KiB request would waste 512x; cap forces the page-rounded size.
        assert policy.extent_bytes_for(4 * KIB) == 4 * KIB

    def test_alignment_matches_granule(self):
        policy = ExtentPolicy()
        assert policy.alignment_frames_for(2 * MIB) == 512
        assert policy.alignment_frames_for(2 * GIB) == GIB // PAGE_SIZE
        assert policy.alignment_frames_for(3 * PAGE_SIZE) == 1

    def test_no_structural_alignment_mode(self):
        policy = ExtentPolicy(align_to_page_structures=False, min_extent_bytes=PAGE_SIZE)
        assert policy.extent_bytes_for(5 * KIB) == 8 * KIB
        assert policy.alignment_frames_for(2 * MIB) == 1

    def test_ledger_wired(self):
        policy = ExtentPolicy()
        policy.extent_bytes_for(300 * KIB)
        assert policy.ledger.wasted_bytes == HUGE_PAGE_2M - 304 * KIB + (304 - 300) * KIB

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ExtentPolicy(min_extent_bytes=100)
        with pytest.raises(ValueError):
            ExtentPolicy(max_waste_ratio=0.5)
        with pytest.raises(ValueError):
            ExtentPolicy().extent_bytes_for(0)

    @given(st.integers(1, 8 * GIB))
    def test_never_under_allocates(self, requested):
        policy = ExtentPolicy()
        assert policy.extent_bytes_for(requested) >= requested

    @given(st.integers(1, 8 * GIB))
    def test_result_is_page_multiple(self, requested):
        policy = ExtentPolicy()
        assert policy.extent_bytes_for(requested) % PAGE_SIZE == 0
