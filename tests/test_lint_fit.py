"""Empirical complexity fitter: model selection on simulated costs."""

import math

import pytest

from repro.lint.decorators import ComplexityClass
from repro.lint.fit import (
    DEFAULT_CONSTANT_SPAN,
    fit_series,
    geometric_sizes,
    loglog_slope,
)


SIZES = [8, 16, 32, 64, 128, 256]


class TestFitSeries:
    def test_flat_series_is_constant(self):
        fit = fit_series(SIZES, [150.0] * len(SIZES))
        assert fit.fitted is ComplexityClass.CONSTANT
        assert fit.exponent == pytest.approx(0.0)
        assert fit.span == pytest.approx(1.0)

    def test_exact_linear(self):
        fit = fit_series(SIZES, [100.0 * n for n in SIZES])
        assert fit.fitted is ComplexityClass.LINEAR
        assert fit.exponent == pytest.approx(1.0, abs=0.05)

    def test_exact_log(self):
        fit = fit_series(SIZES, [50.0 * math.log2(n) for n in SIZES])
        assert fit.fitted is ComplexityClass.LOG

    def test_exact_linearithmic(self):
        fit = fit_series(SIZES, [3.0 * n * math.log2(n) for n in SIZES])
        assert fit.fitted is ComplexityClass.LINEARITHMIC

    def test_small_span_short_circuits_to_constant(self):
        # 20% wobble sits under the span guard: never call it growth.
        costs = [100.0, 104.0, 98.0, 101.0, 103.0, 100.0]
        fit = fit_series(SIZES, costs)
        assert fit.fitted is ComplexityClass.CONSTANT
        assert max(costs) / min(costs) <= DEFAULT_CONSTANT_SPAN

    def test_decreasing_costs_fit_constant_not_growth(self):
        # A negative trend must not be "explained" by a growing class.
        fit = fit_series(SIZES, [1000.0 / n for n in SIZES])
        assert fit.fitted is ComplexityClass.CONSTANT

    def test_all_zero_series_is_constant(self):
        fit = fit_series(SIZES, [0.0] * len(SIZES))
        assert fit.fitted is ComplexityClass.CONSTANT

    def test_needs_at_least_three_points(self):
        with pytest.raises(ValueError):
            fit_series([8, 16], [1.0, 2.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_series(SIZES, [1.0])


class TestHelpers:
    def test_loglog_slope_linear(self):
        slope = loglog_slope(SIZES, [7.0 * n for n in SIZES])
        assert slope == pytest.approx(1.0, abs=0.01)

    def test_loglog_slope_constant(self):
        slope = loglog_slope(SIZES, [7.0] * len(SIZES))
        assert slope == pytest.approx(0.0, abs=0.01)

    def test_geometric_sizes(self):
        assert geometric_sizes(8, 64) == [8, 16, 32, 64]
        assert geometric_sizes(8, 100) == [8, 16, 32, 64, 100]

    def test_geometric_sizes_validates(self):
        with pytest.raises(ValueError):
            geometric_sizes(64, 8)
