"""CostModel parameters and derivations."""

import pytest

from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.units import PAGE_SIZE


class TestCostModel:
    def test_nvm_slower_than_dram(self):
        costs = CostModel()
        assert costs.nvm_read_ns > costs.dram_read_ns
        assert costs.nvm_write_ns > costs.nvm_read_ns

    def test_read_write_dispatch_by_technology(self):
        costs = CostModel()
        assert costs.read_ns(MemoryTechnology.DRAM) == costs.dram_read_ns
        assert costs.read_ns(MemoryTechnology.NVM) == costs.nvm_read_ns
        assert costs.write_ns(MemoryTechnology.DRAM) == costs.dram_write_ns
        assert costs.write_ns(MemoryTechnology.NVM) == costs.nvm_write_ns

    def test_zero_page_cost_linear_in_size(self):
        costs = CostModel()
        assert costs.zero_page_ns(2 * PAGE_SIZE) == 2 * costs.zero_page_ns(PAGE_SIZE)

    def test_zero_page_cost_counts_lines(self):
        costs = CostModel()
        assert costs.zero_page_ns(PAGE_SIZE) == costs.zero_line_ns * (PAGE_SIZE // 64)

    def test_with_overrides_replaces_only_named(self):
        base = CostModel()
        derived = base.with_overrides(nvm_read_ns=123)
        assert derived.nvm_read_ns == 123
        assert derived.dram_read_ns == base.dram_read_ns

    def test_with_overrides_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown cost parameters"):
            CostModel().with_overrides(warp_drive_ns=1)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().dram_read_ns = 1  # type: ignore[misc]

    def test_as_dict_roundtrip(self):
        costs = CostModel()
        data = costs.as_dict()
        assert data["dram_read_ns"] == costs.dram_read_ns
        assert len(data) > 30  # the model is deliberately detailed

    def test_mmap_calibration_anchor(self):
        # DESIGN.md anchors: demand mmap on tmpfs ~8 us.  The constant
        # parts must sum near that (syscall + lock + base + vma).
        costs = CostModel()
        constant = (
            costs.syscall_entry_ns
            + costs.syscall_exit_ns
            + costs.mmap_lock_ns
            + costs.mmap_base_ns
            + costs.vma_insert_ns
        )
        assert 6_000 <= constant <= 10_000
