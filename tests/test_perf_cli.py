"""`repro-o1 bench` / `repro-o1 profile` CLI surface and exit codes."""

from __future__ import annotations

import pstats

from repro.cli import main
from repro.perf.bench import load_document, write_document

#: One cheap op keeps every CLI test to a fraction of a second.
FAST = ["--op", "kernel.spawn_exit", "--rounds", "1", "--quick"]


class TestBench:
    def test_bench_runs_and_prints_table(self, capsys):
        assert main(["bench", *FAST]) == 0
        out = capsys.readouterr().out
        assert "kernel.spawn_exit" in out
        assert "calibration:" in out

    def test_bench_verbose_progress(self, capsys):
        assert main(["bench", *FAST, "-v"]) == 0
        assert "ops/s" in capsys.readouterr().out

    def test_bench_json_writes_valid_document(self, tmp_path):
        path = tmp_path / "bench.json"
        assert main(["bench", *FAST, "--json", str(path)]) == 0
        document = load_document(str(path))
        assert document["mode"] == "quick"
        assert set(document["ops"]) == {"kernel.spawn_exit"}

    def test_compare_pass_exits_zero(self, tmp_path, capsys):
        # Widen the baseline 10x so host-load jitter between the two
        # one-round runs can't flake the verdict — speedups always pass,
        # and the exit-code plumbing is what's under test here.
        baseline = tmp_path / "baseline.json"
        assert main(["bench", *FAST, "--json", str(baseline)]) == 0
        document = load_document(str(baseline))
        document["ops"]["kernel.spawn_exit"]["median_ns"] *= 10
        write_document(str(baseline), document)
        assert main(["bench", *FAST, "--compare", str(baseline)]) == 0
        assert "no wall-clock regressions" in capsys.readouterr().out

    def test_compare_missing_baseline_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "never-written.json"
        assert main(["bench", *FAST, "--compare", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_compare_regression_exits_one(self, tmp_path, capsys):
        # Commit a baseline, then rewrite it pretending the op used to
        # run in 1 ns — faster than any real run by orders of magnitude,
        # beyond what tolerance or calibration scaling (clamped at 0.2x)
        # could forgive — so the gate must go red.
        baseline = tmp_path / "baseline.json"
        assert main(["bench", *FAST, "--json", str(baseline)]) == 0
        document = load_document(str(baseline))
        document["ops"]["kernel.spawn_exit"]["median_ns"] = 1.0
        write_document(str(baseline), document)
        assert main(["bench", *FAST, "--compare", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "reproduce with" in out


class TestProfile:
    def test_profile_prints_correlation(self, capsys):
        assert main(["profile", "--mib", "2"]) == 0
        out = capsys.readouterr().out
        assert "sim-cost vs wall-cost correlation" in out
        assert "spans sampled" in out

    def test_profile_exports(self, tmp_path):
        folded = tmp_path / "profile.folded"
        stats_path = tmp_path / "profile.pstats"
        assert main([
            "profile", "--mib", "2",
            "--folded", str(folded), "--pstats", str(stats_path),
        ]) == 0
        assert folded.read_text().splitlines()
        assert pstats.Stats(str(stats_path)).stats
