"""FOM region growth: extend in place, VMA merging, extent economy."""

import pytest

from repro.core.fom import FileOnlyMemory, MapStrategy
from repro.errors import MappingError, ProtectionError
from repro.units import MIB, PAGE_SIZE


@pytest.fixture
def env(aligned_kernel):
    return aligned_kernel, FileOnlyMemory(aligned_kernel)


class TestGrow:
    def test_grow_extends_usable_range(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB)
        with pytest.raises(ProtectionError):
            kernel.access(process, region.vaddr + 3 * MIB)
        fom.grow_region(region, 4 * MIB)
        kernel.access(process, region.vaddr + 3 * MIB)  # now mapped
        assert region.length == 4 * MIB

    def test_grow_merges_vma(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB)
        fom.grow_region(region, 4 * MIB)
        assert len(process.space.vmas) == 1
        assert process.space.vmas[0].length == 4 * MIB

    def test_grow_maps_only_new_pages(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB)
        with kernel.measure() as m:
            fom.grow_region(region, 4 * MIB)
        # One new 2 MiB extent mapped as one huge PTE.
        assert m.counter_delta.get("pte_write", 0) <= 2
        assert m.counter_delta.get("fault_minor") is None

    def test_grow_no_faults_after(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB)
        fom.grow_region(region, 6 * MIB)
        kernel.access_range(process, region.vaddr, 6 * MIB)
        assert kernel.counters.get("fault_trap") == 0

    def test_file_grew_too(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB)
        fom.grow_region(region, 4 * MIB)
        assert region.inode.page_count == 4 * MIB // PAGE_SIZE

    def test_release_after_grow_frees_everything(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        free_before = kernel.nvm_allocator.free_blocks
        region = fom.allocate(process, 2 * MIB)
        fom.grow_region(region, 8 * MIB)
        fom.release(region)
        assert kernel.nvm_allocator.free_blocks == free_before
        assert process.space.vmas == []

    def test_shrink_rejected(self, env):
        kernel, fom = env
        region = fom.allocate(kernel.spawn("p"), 4 * MIB)
        with pytest.raises(MappingError):
            fom.grow_region(region, 2 * MIB)

    def test_premap_region_cannot_grow(self, env):
        kernel, fom = env
        region = fom.allocate(
            kernel.spawn("p"), 2 * MIB, strategy=MapStrategy.PREMAP
        )
        with pytest.raises(MappingError):
            fom.grow_region(region, 4 * MIB)

    def test_released_region_cannot_grow(self, env):
        kernel, fom = env
        region = fom.allocate(kernel.spawn("p"), 2 * MIB)
        fom.release(region)
        with pytest.raises(MappingError):
            fom.grow_region(region, 4 * MIB)

    def test_demand_region_grows_lazily(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB, strategy=MapStrategy.DEMAND)
        fom.grow_region(region, 4 * MIB)
        kernel.access(process, region.vaddr + 3 * MIB)
        assert kernel.counters.get("fault_minor") == 1
