"""Patrol scrubber behaviour and the seeded media-fault sweep.

The sweep tests call the same per-seed routine as ``repro-o1 ras``: a
seeded fault population over the Fig-2 chaos workload, patrol scrubs
before and after, then the RAS audit, the chaos oracles and the full
sanitizer suite — all of which must come back clean for every seed.
"""

from __future__ import annotations

import pytest

from repro.cli import _run_ras_seed
from repro.ras import FaultKind, MediaFaultModel


@pytest.fixture
def ras_kernel(kernel):
    kernel.arm_ras(model=MediaFaultModel(seed=0, faults_per_bind=0))
    return kernel


class TestPatrolScrubber:
    def test_batch_is_bounded(self, ras_kernel):
        scrubber = ras_kernel.ras.scrubber
        assert scrubber.scrub_batch() == scrubber.batch_frames
        assert scrubber.cursor == scrubber.batch_frames

    def test_cursor_wraps(self, ras_kernel):
        scrubber = ras_kernel.ras.scrubber
        total = scrubber.total_frames
        batches = -(-total // scrubber.batch_frames)
        for _ in range(batches):
            scrubber.scrub_batch()
        assert scrubber.cursor < scrubber.batch_frames

    def test_full_pass_clears_poison_and_retires_dead(self, ras_kernel):
        kernel = ras_kernel
        first_nvm = kernel.nvm_region.first_pfn
        dead = next(
            pfn
            for pfn in range(first_nvm, first_nvm + 64)
            if kernel.pmfs.allocator.block_is_free(pfn)
        )
        poisoned = kernel.dram_region.first_pfn
        kernel.ras.model.inject(dead, FaultKind.DEAD)
        kernel.ras.model.inject(poisoned, FaultKind.POISON)

        probed = kernel.ras.scrubber.scrub_full()

        assert probed == kernel.ras.scrubber.total_frames
        assert kernel.ras.model.faults() == ()
        assert dead in kernel.ras.badblock_pfns()
        assert kernel.counters.get("ras_poison_cleared") == 1
        assert kernel.counters.get("ras_frame_retired") == 1
        assert kernel.ras.audit() == []

    def test_transient_faults_are_tolerated_not_retired(self, ras_kernel):
        kernel = ras_kernel
        pfn = kernel.dram_region.first_pfn + 1
        kernel.ras.model.inject(pfn, FaultKind.TRANSIENT, fail_count=2)
        kernel.ras.scrubber.scrub_batch()
        # Still active: the demand path's bounded retry owns transients.
        assert kernel.ras.model.probe(pfn) is not None
        assert kernel.counters.get("ras_frame_retired") == 0

    def test_busy_dram_frame_skipped_and_counted(self, ras_kernel):
        kernel = ras_kernel
        pfn = kernel.dram_buddy.alloc(0)
        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        kernel.ras.scrub_frame(pfn)
        assert kernel.counters.get("ras_scrub_busy") == 1
        assert pfn not in kernel.ras.model.retired
        # Once the frame frees, the next patrol visit retires it.
        kernel.dram_buddy.free(pfn)
        kernel.ras.scrub_frame(pfn)
        assert pfn in kernel.ras.model.retired


class TestSeededSweep:
    @pytest.mark.parametrize("seed", range(10))
    def test_seeded_fault_population_survives_fig2_workload(self, seed):
        report = _run_ras_seed(seed)
        assert report["ok"], report
        assert report["sanitizer_violations"] == []
        assert report["oracle_problems"] == []
        assert report["problems"] == []
        # Every sampled permanent fault was retired onto the persisted
        # badblock list (the issue's acceptance bar).
        for pfn in report["sampled_dead"]:
            assert pfn in report["retired"]
            assert pfn in report["badblock_pfns"]
