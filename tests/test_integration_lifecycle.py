"""A day in the life: multi-process, pressure, crash, recovery.

One long scenario exercising most of the system together, asserting the
invariants that matter at each stage.  If subsystems disagree about
ownership or accounting, this is where it shows.
"""

import pytest

from repro.analysis.report import meminfo
from repro.core.fom import (
    FileOnlyMemory,
    FileReclaimer,
    FomHeap,
    MapStrategy,
    PersistenceManager,
    launch_fom_process,
)
from repro.core.pbm import PbmManager
from repro.kernel import Kernel, MachineConfig
from repro.runtime import LogStructuredStore, ObjectHeap
from repro.units import GIB, KIB, MIB, PAGE_SIZE


def test_full_lifecycle():
    kernel = Kernel(
        MachineConfig(
            dram_bytes=1 * GIB,
            nvm_bytes=8 * GIB,
            pmfs_extent_align_frames=512,
            cpus=4,
        )
    )
    fom = FileOnlyMemory(kernel)
    persistence = PersistenceManager(fom, crypto_erase=True)
    reclaimer = FileReclaimer(fom)
    nvm_free_at_boot = kernel.nvm_allocator.free_blocks

    # --- stage 1: services come up -----------------------------------
    db = launch_fom_process(
        fom, "db", code_bytes=2 * MIB, heap_bytes=64 * MIB,
        stack_bytes=2 * MIB, code_path="/bin/db",
    )
    web = launch_fom_process(
        fom, "web", code_bytes=2 * MIB, heap_bytes=16 * MIB,
        stack_bytes=2 * MIB, code_path="/bin/web",
    )
    assert meminfo(kernel)["processes"] == 2

    # --- stage 2: the db builds state ---------------------------------
    table = fom.allocate(
        db.process, 32 * MIB, name="/state/table", persistent=True
    )
    persistence.mark_persistent(table)
    heap = FomHeap(fom, db.process)
    records = [heap.malloc(128) for _ in range(500)]
    for addr in records[:50]:
        kernel.access(db.process, addr, write=True)
    log = LogStructuredStore(fom, db.process, segment_bytes=2 * MIB)
    for key in range(200):
        log.put(key, bytes([key % 251]) * 500)
    assert log.get(42) == bytes([42]) * 500

    # --- stage 3: workers share a dataset via PBM ----------------------
    pbm = PbmManager(kernel)
    kernel.pmfs.makedirs("/models")
    dataset = kernel.pmfs.create("/models/weights", size=16 * MIB)
    maps = [pbm.map_file(kernel.spawn(f"w{i}"), dataset) for i in range(3)]
    assert len({m.vaddr for m in maps}) == 1

    # --- stage 4: memory pressure hits caches --------------------------
    for index in range(4):
        cache = fom.allocate(
            db.process, 8 * MIB, name=f"/cache/{index}", discardable=True
        )
        reclaimer.register(cache)
        kernel.clock.advance(1000)
    freed, deleted = reclaimer.reclaim_bytes(16 * MIB)
    assert freed >= 16 * MIB and deleted == 2
    assert kernel.pmfs.fsck() == []

    # --- stage 5: power failure ----------------------------------------
    with kernel.pmfs.open("/state/table") as handle:
        handle.pwrite(0, b"checkpoint-7")
    kernel.crash()
    report = persistence.recover()
    assert "/state/table" in report.survivors
    assert "/bin/db" in report.survivors  # program text persists
    assert not any(path.startswith("/cache") for path in report.survivors)
    assert kernel.pmfs.fsck() == []

    # --- stage 6: restart and verify -----------------------------------
    db2 = launch_fom_process(
        fom, "db", code_bytes=2 * MIB, heap_bytes=64 * MIB,
        stack_bytes=2 * MIB, code_path="/bin/db",
    )
    reopened = fom.open_region(db2.process, "/state/table")
    kernel.access(db2.process, reopened.vaddr)
    with kernel.pmfs.open("/state/table") as handle:
        assert handle.pread(0, 12) == b"checkpoint-7"

    # --- stage 7: clean shutdown returns all transient storage ----------
    db2.exit()
    # Only the named persistent files remain allocated on NVM.
    survivors_blocks = sum(
        tree.block_count for tree in kernel.pmfs._trees.values()
    )
    used = kernel.nvm_allocator.total_blocks - kernel.nvm_allocator.free_blocks
    assert used == survivors_blocks
    assert kernel.pmfs.fsck() == []
    # Every surviving file is one of the persistent ones.
    for path, inode in kernel.pmfs.iter_files():
        assert inode.persistent, f"unexpected survivor {path}"
