"""VMAs: geometry, merging, backings."""

import pytest

from repro.errors import MappingError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion
from repro.units import MIB, PAGE_SIZE
from repro.vm.vma import AnonBacking, MapFlags, Protection, Vma


def make_anon(region_size=MIB):
    clock = SimClock()
    counters = EventCounters()
    region = MemoryRegion(start=0, size=region_size, tech=MemoryTechnology.DRAM)
    buddy = BuddyAllocator(region)
    return AnonBacking(buddy, clock, CostModel(), counters), buddy, clock, counters


def make_vma(start=0, end=4 * PAGE_SIZE, backing=None, offset=0, **kw):
    backing = backing or make_anon()[0]
    return Vma(
        start=start,
        end=end,
        prot=kw.pop("prot", Protection.rw()),
        flags=kw.pop("flags", MapFlags.PRIVATE | MapFlags.ANONYMOUS),
        backing=backing,
        backing_offset=offset,
        **kw,
    )


class TestVmaGeometry:
    def test_lengths_and_pages(self):
        vma = make_vma(0x1000, 0x5000)
        assert vma.length == 0x4000
        assert vma.page_count == 4

    def test_contains_and_overlaps(self):
        vma = make_vma(0x1000, 0x3000)
        assert vma.contains(0x1000) and vma.contains(0x2FFF)
        assert not vma.contains(0x3000)
        assert vma.overlaps(0x2000, 0x4000)
        assert not vma.overlaps(0x3000, 0x4000)

    def test_backing_page_uses_offset(self):
        vma = make_vma(0x10000, 0x14000, offset=10)
        assert vma.backing_page(0x11000) == 11

    def test_unaligned_rejected(self):
        with pytest.raises(MappingError):
            make_vma(1, PAGE_SIZE)

    def test_empty_rejected(self):
        with pytest.raises(MappingError):
            make_vma(PAGE_SIZE, PAGE_SIZE)

    def test_is_private(self):
        assert make_vma(flags=MapFlags.PRIVATE).is_private()
        assert not make_vma(flags=MapFlags.SHARED).is_private()


class TestVmaMerging:
    def test_adjacent_compatible_merge(self):
        backing, _, _, _ = make_anon()
        left = make_vma(0, 4 * PAGE_SIZE, backing=backing, offset=0)
        right = make_vma(4 * PAGE_SIZE, 8 * PAGE_SIZE, backing=backing, offset=4)
        assert left.can_merge_with(right)
        left.merge_with(right)
        assert left.end == 8 * PAGE_SIZE

    def test_gap_prevents_merge(self):
        backing, _, _, _ = make_anon()
        left = make_vma(0, 4 * PAGE_SIZE, backing=backing)
        right = make_vma(8 * PAGE_SIZE, 12 * PAGE_SIZE, backing=backing, offset=8)
        assert not left.can_merge_with(right)

    def test_different_prot_prevents_merge(self):
        backing, _, _, _ = make_anon()
        left = make_vma(0, 4 * PAGE_SIZE, backing=backing)
        right = make_vma(
            4 * PAGE_SIZE, 8 * PAGE_SIZE, backing=backing, offset=4,
            prot=Protection.READ,
        )
        assert not left.can_merge_with(right)

    def test_noncontiguous_file_offset_prevents_merge(self):
        backing, _, _, _ = make_anon()
        left = make_vma(0, 4 * PAGE_SIZE, backing=backing, offset=0)
        right = make_vma(4 * PAGE_SIZE, 8 * PAGE_SIZE, backing=backing, offset=9)
        assert not left.can_merge_with(right)

    def test_merge_incompatible_raises(self):
        left = make_vma(0, 4 * PAGE_SIZE)
        right = make_vma(8 * PAGE_SIZE, 12 * PAGE_SIZE)
        with pytest.raises(MappingError):
            left.merge_with(right)


class TestAnonBacking:
    def test_frame_allocated_once(self):
        backing, _, _, counters = make_anon()
        first = backing.frame_for(3, write=True)
        second = backing.frame_for(3, write=False)
        assert first == second
        assert counters.get("anon_page_alloc") == 1

    def test_zeroing_charged_on_alloc(self):
        backing, _, clock, _ = make_anon()
        backing.frame_for(0, write=True)
        assert clock.now >= CostModel().zero_page_ns(PAGE_SIZE)

    def test_frame_runs_one_page_each(self):
        backing, _, _, _ = make_anon()
        runs = list(backing.frame_runs(0, 5))
        assert len(runs) == 5
        assert all(run == 1 for _, _, run in runs)

    def test_release_frees_frames(self):
        backing, buddy, _, _ = make_anon()
        before = buddy.free_frames
        backing.frame_for(0, write=True)
        backing.frame_for(1, write=True)
        backing.release(0, 2)
        assert buddy.free_frames == before
        assert backing.resident_pages == 0

    def test_release_tolerates_holes(self):
        backing, _, _, _ = make_anon()
        backing.frame_for(5, write=True)
        backing.release(0, 10)  # pages 0-4, 6-9 never existed
        assert backing.resident_pages == 0

    def test_swap_out_without_device_drops_frame(self):
        backing, buddy, _, _ = make_anon()
        before = buddy.free_frames
        backing.frame_for(0, write=True)
        backing.swap_out(0)
        assert buddy.free_frames == before
