"""File-backed heap: size classes, arenas, large objects, traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fom import FileOnlyMemory, FomHeap, MapStrategy
from repro.errors import MappingError
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.workloads.alloc_traces import AllocTrace, TraceOp


@pytest.fixture
def env(aligned_kernel):
    kernel = aligned_kernel
    fom = FileOnlyMemory(kernel)
    process = kernel.spawn("heap")
    return kernel, FomHeap(fom, process), fom


class TestSmallObjects:
    def test_distinct_addresses(self, env):
        _, heap, _ = env
        addrs = {heap.malloc(100) for _ in range(100)}
        assert len(addrs) == 100

    def test_size_class_rounding(self, env):
        _, heap, _ = env
        a = heap.malloc(17)  # class 32
        b = heap.malloc(17)
        assert abs(a - b) >= 32

    def test_free_reuses_address(self, env):
        _, heap, _ = env
        addr = heap.malloc(64)
        heap.malloc(64)
        heap.free(addr)
        assert heap.malloc(64) == addr

    def test_one_arena_serves_many_allocations(self, env):
        kernel, heap, fom = env
        before = kernel.counters.get("fom_allocate")
        for _ in range(1000):
            heap.malloc(128)
        # 1000 x 128 B fits in one 2 MiB arena file.
        assert kernel.counters.get("fom_allocate") - before == 1

    def test_no_faults_during_heap_use(self, env):
        kernel, heap, _ = env
        addrs = [heap.malloc(256) for _ in range(64)]
        for addr in addrs:
            kernel.access(heap._process, addr, write=True)
        assert kernel.counters.get("fault_trap") == 0

    def test_double_free_detected(self, env):
        _, heap, _ = env
        addr = heap.malloc(64)
        heap.free(addr)
        with pytest.raises(MappingError):
            heap.free(addr)

    def test_free_unknown_rejected(self, env):
        _, heap, _ = env
        with pytest.raises(MappingError):
            heap.free(0x12345)

    def test_zero_malloc_rejected(self, env):
        _, heap, _ = env
        with pytest.raises(MappingError):
            heap.malloc(0)


class TestLargeObjects:
    def test_large_object_gets_own_region(self, env):
        kernel, heap, fom = env
        addr = heap.malloc(10 * MIB)
        stats = heap.stats()
        assert stats["large_count"] == 1
        assert stats["large_bytes"] >= 10 * MIB

    def test_large_free_releases_file(self, env):
        kernel, heap, fom = env
        free_before = kernel.nvm_allocator.free_blocks
        addr = heap.malloc(10 * MIB)
        heap.free(addr)
        assert kernel.nvm_allocator.free_blocks == free_before

    def test_boundary_at_4k(self, env):
        _, heap, _ = env
        small = heap.malloc(4 * KIB)  # largest size class
        large = heap.malloc(4 * KIB + 1)  # own region
        stats = heap.stats()
        assert stats["large_count"] == 1


class TestArenaLifecycle:
    def test_empty_extra_arena_released(self, env):
        kernel, heap, _ = env
        per_arena = (2 * MIB) // 4096  # 4 KiB class slots per arena
        addrs = [heap.malloc(4 * KIB) for _ in range(per_arena + 1)]
        assert heap.stats()["arena_count"] == 2
        # Free everything in the *second* arena.
        heap.free(addrs[-1])
        assert heap.stats()["arena_count"] == 1

    def test_destroy_releases_all(self, env):
        kernel, heap, fom = env
        free_before = kernel.nvm_allocator.free_blocks
        for _ in range(100):
            heap.malloc(512)
        heap.malloc(8 * MIB)
        heap.destroy()
        assert kernel.nvm_allocator.free_blocks == free_before
        assert heap.stats()["arena_count"] == 0


class TestTraceDriven:
    def test_trace_replay_consistency(self, env):
        _, heap, _ = env
        trace = AllocTrace(seed=11).generate(400, live_target=64)
        live = {}
        for event in trace:
            if event.op is TraceOp.MALLOC:
                live[event.tag] = heap.malloc(event.size)
            else:
                heap.free(live.pop(event.tag))
        stats = heap.stats()
        assert stats["malloc_count"] - stats["free_count"] == len(live)

    @given(st.integers(0, 2**31))
    @settings(max_examples=10)
    def test_random_traces_never_corrupt(self, seed):
        """Property: any generated trace replays without address clashes."""
        kernel = Kernel(
            MachineConfig(
                dram_bytes=256 * MIB, nvm_bytes=2 * GIB,
                pmfs_extent_align_frames=512,
            )
        )
        fom = FileOnlyMemory(kernel)
        heap = FomHeap(fom, kernel.spawn("h"))
        trace = AllocTrace(seed=seed).generate(150, live_target=32)
        live = {}
        for event in trace:
            if event.op is TraceOp.MALLOC:
                addr = heap.malloc(event.size)
                assert addr not in live.values()
                live[event.tag] = addr
            else:
                heap.free(live.pop(event.tag))
