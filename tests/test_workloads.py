"""Workload generators: determinism and distribution shape."""

import pytest

from repro.units import KIB, MIB, PAGE_SIZE
from repro.workloads import (
    AllocTrace,
    TraceOp,
    hot_cold_pages,
    random_pages,
    sequential_pages,
    sparse_pages,
    strided_offsets,
)


class TestPatterns:
    def test_sequential_one_per_page(self):
        addrs = sequential_pages(0x1000, 16 * KIB)
        assert len(addrs) == 4
        assert addrs == [0x1000, 0x2000, 0x3000, 0x4000]

    def test_sequential_bad_length(self):
        with pytest.raises(ValueError):
            sequential_pages(0, 0)

    def test_random_pages_deterministic(self):
        a = random_pages(0, MIB, 100, seed=5)
        b = random_pages(0, MIB, 100, seed=5)
        assert a == b
        assert random_pages(0, MIB, 100, seed=6) != a

    def test_random_pages_in_bounds(self):
        for addr in random_pages(0x10000, MIB, 500, seed=1):
            assert 0x10000 <= addr < 0x10000 + MIB
            assert addr % PAGE_SIZE == 0

    def test_random_pages_too_small_region(self):
        with pytest.raises(ValueError):
            random_pages(0, 100, 10)

    def test_sparse_fraction(self):
        addrs = sparse_pages(0, MIB, fraction=0.25, seed=2)
        assert len(addrs) == 64  # 256 pages * 0.25
        assert len(set(addrs)) == len(addrs)  # each once
        assert addrs == sorted(addrs)

    def test_sparse_bad_fraction(self):
        with pytest.raises(ValueError):
            sparse_pages(0, MIB, fraction=0.0)
        with pytest.raises(ValueError):
            sparse_pages(0, MIB, fraction=1.5)

    def test_hot_cold_skew(self):
        addrs = hot_cold_pages(
            0, MIB, 2000, hot_fraction=0.1, hot_probability=0.9, seed=3
        )
        hot_limit = int((MIB // PAGE_SIZE) * 0.1) * PAGE_SIZE
        hot_hits = sum(1 for addr in addrs if addr < hot_limit)
        assert 0.8 <= hot_hits / len(addrs) <= 1.0

    def test_hot_cold_validation(self):
        with pytest.raises(ValueError):
            hot_cold_pages(0, MIB, 10, hot_fraction=1.0)
        with pytest.raises(ValueError):
            hot_cold_pages(0, MIB, 10, hot_probability=2.0)

    def test_strided(self):
        assert strided_offsets(0, 256, 64) == [0, 64, 128, 192]
        with pytest.raises(ValueError):
            strided_offsets(0, 256, 0)


class TestAllocTraces:
    def test_deterministic(self):
        a = AllocTrace(seed=9).generate(200)
        b = AllocTrace(seed=9).generate(200)
        assert a == b

    def test_free_always_names_live_malloc(self):
        trace = AllocTrace(seed=4).generate(500, live_target=50)
        live = set()
        for event in trace:
            if event.op is TraceOp.MALLOC:
                assert event.size > 0
                live.add(event.tag)
            else:
                assert event.tag in live
                live.remove(event.tag)

    def test_live_bounded(self):
        trace = AllocTrace(seed=4).generate(1000, live_target=32)
        live = 0
        peak = 0
        for event in trace:
            live += 1 if event.op is TraceOp.MALLOC else -1
            peak = max(peak, live)
        assert peak <= 64  # 2 * live_target

    def test_size_mixture(self):
        trace = AllocTrace(seed=8).generate(3000, live_target=500)
        sizes = [e.size for e in trace if e.op is TraceOp.MALLOC]
        small = sum(1 for size in sizes if size <= 512)
        large = sum(1 for size in sizes if size > 16 * KIB)
        assert small > len(sizes) * 0.6  # mostly small
        assert 0 < large < len(sizes) * 0.1  # rare large

    def test_total_allocated_helper(self):
        trace = AllocTrace(seed=1).generate(100)
        total = AllocTrace.total_allocated(trace)
        assert total == sum(e.size for e in trace if e.op is TraceOp.MALLOC)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            AllocTrace().generate(0)
        with pytest.raises(ValueError):
            AllocTrace(large_fraction=0.9, medium_fraction=0.3)
