"""Whole-file reclamation vs page-scan reclamation."""

import pytest

from repro.core.fom import FileOnlyMemory, FileReclaimer, MapStrategy
from repro.units import KIB, MIB, PAGE_SIZE
from repro.vm.reclaimd import ClockReclaimer


@pytest.fixture
def env(aligned_kernel):
    kernel = aligned_kernel
    fom = FileOnlyMemory(kernel)
    return kernel, fom, FileReclaimer(fom)


def make_discardable(kernel, fom, process, count=4, size=2 * MIB):
    regions = []
    for index in range(count):
        region = fom.allocate(
            process, size, name=f"/cache{index}", discardable=True
        )
        regions.append(region)
        kernel.clock.advance(1000)  # distinct last-used times
        fom.touch_region(region)
    return regions


class TestRegistration:
    def test_only_discardable_accepted(self, env):
        kernel, fom, reclaimer = env
        process = kernel.spawn("p")
        critical = fom.allocate(process, 1 * MIB)
        with pytest.raises(ValueError):
            reclaimer.register(critical)

    def test_candidate_accounting(self, env):
        kernel, fom, reclaimer = env
        process = kernel.spawn("p")
        for region in make_discardable(kernel, fom, process, count=3):
            reclaimer.register(region)
        assert reclaimer.candidate_count == 3
        assert reclaimer.reclaimable_bytes() == 3 * 2 * MIB


class TestReclaim:
    def test_coldest_files_deleted_first(self, env):
        kernel, fom, reclaimer = env
        process = kernel.spawn("p")
        regions = make_discardable(kernel, fom, process, count=4)
        for region in regions:
            reclaimer.register(region)
        # Re-touch region 0 so it becomes the hottest.
        fom.touch_region(regions[0])
        freed, deleted = reclaimer.reclaim_bytes(2 * MIB)
        assert deleted == 1
        assert regions[1].released  # the coldest after the re-touch
        assert not regions[0].released

    def test_frees_enough_bytes(self, env):
        kernel, fom, reclaimer = env
        process = kernel.spawn("p")
        for region in make_discardable(kernel, fom, process, count=4):
            reclaimer.register(region)
        freed, deleted = reclaimer.reclaim_bytes(5 * MIB)
        assert freed >= 5 * MIB
        assert deleted == 3

    def test_reclaim_returns_storage(self, env):
        kernel, fom, reclaimer = env
        process = kernel.spawn("p")
        free_before = kernel.nvm_allocator.free_blocks
        for region in make_discardable(kernel, fom, process, count=2):
            reclaimer.register(region)
        reclaimer.reclaim_bytes(4 * MIB)
        assert kernel.nvm_allocator.free_blocks == free_before

    def test_no_page_scanning(self, env):
        kernel, fom, reclaimer = env
        process = kernel.spawn("p")
        for region in make_discardable(kernel, fom, process, count=4):
            reclaimer.register(region)
        with kernel.measure() as m:
            reclaimer.reclaim_bytes(4 * MIB)
        assert m.counter_delta.get("reclaim_scanned") is None
        assert m.counter_delta.get("frame_meta_touch") is None

    def test_bad_target_rejected(self, env):
        _, _, reclaimer = env
        with pytest.raises(ValueError):
            reclaimer.reclaim_bytes(0)


class TestVersusClockScan:
    def test_file_reclaim_beats_clock_scan(self, aligned_kernel):
        """Head-to-head: reclaim ~8 MiB from a 32 MiB resident set.

        Clock must scan (and charge) per page; file reclaim deletes two
        files.  The simulated-time gap is the paper's argument."""
        kernel = aligned_kernel
        # --- baseline: demand-faulted anon memory + clock reclaim -------
        baseline = kernel.spawn("baseline", track_lru=True)
        sys = kernel.syscalls(baseline)
        va = sys.mmap(32 * MIB)
        kernel.access_range(baseline, va, 32 * MIB)
        clock_reclaimer = ClockReclaimer(
            kernel.lru, kernel.frame_table, kernel.counters
        )
        with kernel.measure() as scan:
            clock_reclaimer.reclaim(2048)  # 8 MiB of pages
        # --- file-only memory: discardable cache files ------------------
        fom = FileOnlyMemory(kernel)
        reclaimer = FileReclaimer(fom)
        fom_process = kernel.spawn("fom")
        for index in range(4):
            region = fom.allocate(
                fom_process, 8 * MIB, name=f"/c{index}", discardable=True
            )
            reclaimer.register(region)
        with kernel.measure() as file_reclaim:
            reclaimer.reclaim_bytes(8 * MIB)
        assert file_reclaim.elapsed_ns < scan.elapsed_ns / 10
