"""Regression-gate comparator: tolerances, scaling, and failure modes."""

from __future__ import annotations

import pytest

from repro.perf.bench import OpResult, build_document, write_document
from repro.perf.compare import (
    DEFAULT_TOLERANCE,
    PER_OP_TOLERANCE,
    SMALL_OP_BONUS,
    SMALL_OP_NS,
    MissingBaselineError,
    compare_documents,
    compare_to_baseline,
    tolerance_for,
)


def env(calibration_ns: float = 1_000_000.0):
    return {
        "python": "3.0.0",
        "implementation": "CPython",
        "platform": "test",
        "machine": "test",
        "cpus": 1,
        "calibration_ns": calibration_ns,
    }


def results(**medians: float):
    return [
        OpResult(name=name, median_ns=ns, ops_per_sec=1e9 / ns,
                 rounds=3, batch=8)
        for name, ns in medians.items()
    ]


def document(calibration_ns: float = 1_000_000.0, **medians: float):
    return build_document(results(**medians), env=env(calibration_ns))


# ----------------------------------------------------------------------
# Tolerance policy
# ----------------------------------------------------------------------
class TestTolerance:
    def test_default_below_two(self):
        # The whole point of the gate: a genuine 2x slowdown must fail,
        # so every tolerance (default and overrides) stays under 2.0.
        assert DEFAULT_TOLERANCE < 2.0
        for name, tolerance in PER_OP_TOLERANCE.items():
            assert tolerance < 2.0, name

    def test_small_ops_get_bonus(self):
        big = tolerance_for("x", SMALL_OP_NS * 10)
        small = tolerance_for("x", SMALL_OP_NS / 2)
        assert big == DEFAULT_TOLERANCE
        assert small == pytest.approx(DEFAULT_TOLERANCE + SMALL_OP_BONUS)

    def test_per_op_override_wins(self):
        assert tolerance_for(
            "x", 10_000.0, per_op={"x": 1.9}
        ) == pytest.approx(1.9)


# ----------------------------------------------------------------------
# compare_documents verdicts
# ----------------------------------------------------------------------
class TestCompare:
    def test_identical_documents_pass(self):
        base = document(**{"a.op": 10_000.0, "b.op": 20_000.0})
        report = compare_documents(base, base)
        assert report.ok
        assert report.scale == pytest.approx(1.0)
        assert {c.name for c in report.comparisons} == {"a.op", "b.op"}
        assert "PASS" in report.render_text()

    def test_two_x_slowdown_fails(self):
        base = document(**{"a.op": 10_000.0})
        slow = document(**{"a.op": 20_000.0})
        report = compare_documents(base, slow)
        assert not report.ok
        [comparison] = report.comparisons
        assert comparison.ratio == pytest.approx(2.0)
        assert comparison.verdict == "REGRESSED"
        assert "REGRESSED" in report.render_text()
        assert report.problems()

    def test_missing_op_fails(self):
        base = document(**{"a.op": 10_000.0, "b.op": 10_000.0})
        current = document(**{"a.op": 10_000.0})
        report = compare_documents(base, current)
        assert not report.ok
        missing = [c for c in report.comparisons if c.name == "b.op"]
        assert missing[0].verdict == "MISSING"
        assert any("dropped" in problem for problem in report.problems())

    def test_new_op_passes_but_is_reported(self):
        base = document(**{"a.op": 10_000.0})
        current = document(**{"a.op": 10_000.0, "fresh.op": 5_000.0})
        report = compare_documents(base, current)
        assert report.ok
        assert report.new_ops == ["fresh.op"]
        assert "fresh.op" in report.render_text()

    def test_speedups_always_pass(self):
        base = document(**{"a.op": 10_000.0})
        fast = document(**{"a.op": 1_000.0})
        assert compare_documents(base, fast).ok

    def test_invalid_document_raises(self):
        base = document(**{"a.op": 10_000.0})
        broken = dict(base)
        broken.pop("ops")
        with pytest.raises(ValueError, match="invalid"):
            compare_documents(base, broken)
        with pytest.raises(ValueError, match="invalid"):
            compare_documents(broken, base)


# ----------------------------------------------------------------------
# Calibration scaling
# ----------------------------------------------------------------------
class TestCalibrationScaling:
    def test_slower_machine_is_forgiven(self):
        # Current machine's calibration loop takes 2x the baseline's: a
        # uniform 2x wall slowdown is environmental, not a regression.
        base = document(calibration_ns=1_000_000.0, **{"a.op": 10_000.0})
        current = document(calibration_ns=2_000_000.0, **{"a.op": 20_000.0})
        report = compare_documents(base, current)
        assert report.scale == pytest.approx(2.0)
        assert report.ok

    def test_faster_machine_does_not_mask_regression(self):
        # Machine got 2x faster but the op stayed flat: that is a real
        # 2x algorithmic regression and must fail.
        base = document(calibration_ns=2_000_000.0, **{"a.op": 10_000.0})
        current = document(calibration_ns=1_000_000.0, **{"a.op": 10_000.0})
        report = compare_documents(base, current)
        assert report.scale == pytest.approx(0.5)
        assert not report.ok

    def test_scale_is_clamped(self):
        base = document(calibration_ns=1.0, **{"a.op": 10_000.0})
        current = document(calibration_ns=1e9, **{"a.op": 10_000.0})
        assert compare_documents(base, current).scale == 5.0
        assert compare_documents(current, base).scale == 0.2


# ----------------------------------------------------------------------
# compare_to_baseline (file-level entry the CLI uses)
# ----------------------------------------------------------------------
class TestBaselineFile:
    def test_missing_baseline_raises_distinct_error(self, tmp_path):
        with pytest.raises(MissingBaselineError, match="does not exist"):
            compare_to_baseline(
                str(tmp_path / "nope.json"),
                results(**{"a.op": 10.0}),
                env=env(),
            )

    def test_round_trip_through_file_passes(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_document(str(path), document(**{"a.op": 10_000.0}))
        report = compare_to_baseline(
            str(path), results(**{"a.op": 10_000.0}), env=env()
        )
        assert report.ok

    def test_injected_slowdown_fails_through_file(self, tmp_path):
        # The issue's acceptance fixture: gate a 2x-slower "current" run
        # against a committed baseline file and demand a red verdict.
        path = tmp_path / "baseline.json"
        write_document(
            str(path),
            document(**{"a.op": 10_000.0, "b.op": 4_000.0}),
        )
        report = compare_to_baseline(
            str(path),
            results(**{"a.op": 20_000.0, "b.op": 8_000.0}),
            env=env(),
        )
        assert not report.ok
        assert len(report.problems()) == 2
