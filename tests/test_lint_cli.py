"""repro-o1 lint subcommand."""

import json

from repro.cli import main


class TestLintCommand:
    def test_lint_clean_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "o1 lint:" in out
        assert "0 violation(s)" in out

    def test_lint_json_report(self, capsys, tmp_path):
        path = tmp_path / "lint_report.json"
        assert main(["lint", "--json", str(path)]) == 0
        report = json.loads(path.read_text())
        assert report["version"] == 1
        assert report["lint"]["violations"] == []
        assert report["lint"]["functions_checked"] >= 50
        assert report.get("fit") is None

    def test_lint_fit_single_op(self, capsys, tmp_path):
        path = tmp_path / "lint_report.json"
        assert main(
            ["lint", "--fit", "--op", "rangetrans.map_file",
             "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "o1 fit: 1 operation(s)" in out
        assert "rangetrans.map_file" in out
        report = json.loads(path.read_text())
        ops = report["fit"]["operations"]
        assert len(ops) == 1
        assert ops[0]["ok"] is True
        assert ops[0]["fitted"] == "O(1)"

    def test_lint_fit_flags_control(self, capsys):
        assert main(["lint", "--fit", "--op", "fom.demand_touch"]) == 0
        out = capsys.readouterr().out
        assert "[control]" in out
        assert "fitted O(n)" in out

    def test_dirty_tree_exits_one(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "from repro.lint import o1\n\n@o1\ndef b(pages):\n"
            "    for p in pages:\n        x(p)\n"
        )
        empty_baseline = tmp_path / "baseline.json"
        empty_baseline.write_text('{"version": 1, "entries": []}')
        assert main(
            ["lint", "--root", str(pkg), "--baseline", str(empty_baseline)]
        ) == 1
        out = capsys.readouterr().out
        assert "o1-size-loop" in out

    def test_missing_root_exits_two(self, capsys, tmp_path):
        assert main(["lint", "--root", str(tmp_path / "nope")]) == 2
