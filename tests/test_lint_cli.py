"""repro-o1 lint subcommand."""

import json

from repro.cli import main


class TestLintCommand:
    def test_lint_clean_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "o1 lint:" in out
        assert "0 violation(s)" in out

    def test_lint_json_report(self, capsys, tmp_path):
        path = tmp_path / "lint_report.json"
        assert main(["lint", "--json", str(path)]) == 0
        report = json.loads(path.read_text())
        assert report["version"] == 3
        assert report["lint"]["violations"] == []
        assert report["lint"]["functions_checked"] >= 50
        assert report.get("fit") is None
        assert report.get("flow") is None

    def test_lint_fit_single_op(self, capsys, tmp_path):
        path = tmp_path / "lint_report.json"
        assert main(
            ["lint", "--fit", "--op", "rangetrans.map_file",
             "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "o1 fit: 1 operation(s)" in out
        assert "rangetrans.map_file" in out
        report = json.loads(path.read_text())
        ops = report["fit"]["operations"]
        assert len(ops) == 1
        assert ops[0]["ok"] is True
        assert ops[0]["fitted"] == "O(1)"

    def test_lint_fit_flags_control(self, capsys):
        assert main(["lint", "--fit", "--op", "fom.demand_touch"]) == 0
        out = capsys.readouterr().out
        assert "[control]" in out
        assert "fitted O(n)" in out

    def test_dirty_tree_exits_one(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "from repro.lint import o1\n\n@o1\ndef b(pages):\n"
            "    for p in pages:\n        x(p)\n"
        )
        empty_baseline = tmp_path / "baseline.json"
        empty_baseline.write_text('{"version": 1, "entries": []}')
        assert main(
            ["lint", "--root", str(pkg), "--baseline", str(empty_baseline)]
        ) == 1
        out = capsys.readouterr().out
        assert "o1-size-loop" in out

    def test_missing_root_exits_two(self, capsys, tmp_path):
        assert main(["lint", "--root", str(tmp_path / "nope")]) == 2

    def test_interproc_clean_with_artifacts(self, capsys, tmp_path):
        report_path = tmp_path / "lint_report.json"
        dot_path = tmp_path / "callgraph.dot"
        assert main(
            ["lint", "--interproc", "--json", str(report_path),
             "--dot", str(dot_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "o1 flow:" in out
        assert "0 finding(s)" in out
        assert "2/2 controls verified" in out
        assert "0 stale suppression(s)" in out
        assert dot_path.read_text().startswith("digraph")
        report = json.loads(report_path.read_text())
        assert report["version"] == 3
        assert report["flow"]["findings"] == []
        assert len(report["flow"]["controls_verified"]) == 2
        assert report["flow"]["stale_suppressions"] == []

    def test_alloc_clean_with_artifacts(self, capsys, tmp_path):
        report_path = tmp_path / "lint_report.json"
        assert main(["lint", "--alloc", "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "o1 alloc:" in out
        assert "1/1 controls verified" in out
        assert "allocfit: 3 op(s) cross-checked" in out
        report = json.loads(report_path.read_text())
        assert report["version"] == 3
        section = report["alloc"]
        assert section["findings"] == []
        assert section["stale_suppressions"] == []
        assert len(section["controls_verified"]) == 1
        fit_rows = section["allocfit"]
        assert all(row["ok"] for row in fit_rows)
        assert {row["name"] for row in fit_rows} == {
            "access.tlb_hit", "access.tlb_miss_walk",
            "control.allocfree_retaining",
        }

    def test_alloc_dirty_tree_exits_one(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "from repro.lint import allocfree\n\n"
            "@allocfree\ndef hot(x):\n    return [x]\n"
        )
        empty = tmp_path / "baseline.json"
        empty.write_text('{"version": 1, "entries": []}')
        assert main(
            ["lint", "--alloc", "--root", str(pkg),
             "--baseline", str(empty), "--alloc-baseline", str(empty)]
        ) == 1
        out = capsys.readouterr().out
        assert "alloc-exceeds-declared" in out

    def test_interproc_dirty_tree_exits_one(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "from repro.lint import o1\n\n"
            "@o1\ndef entry(pages):\n    return helper(pages)\n\n"
            "def helper(pages):\n"
            "    total = 0\n"
            "    for p in pages:\n        total += p\n"
            "    return total\n"
        )
        empty = tmp_path / "baseline.json"
        empty.write_text('{"version": 1, "entries": []}')
        assert main(
            ["lint", "--interproc", "--root", str(pkg),
             "--baseline", str(empty), "--flow-baseline", str(empty)]
        ) == 1
        out = capsys.readouterr().out
        assert "flow-cost-exceeds-declared" in out
