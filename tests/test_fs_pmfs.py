"""PMFS: extent allocation, alignment, journal, persistence."""

import pytest

from repro.errors import NoSpaceError
from repro.fs.extent import Extent
from repro.fs.pmfs import BlockAllocator
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE


@pytest.fixture
def fs(kernel):
    return kernel.pmfs


class TestBlockAllocator:
    def test_contiguous_extent(self, kernel):
        alloc = kernel.nvm_allocator
        extent = alloc.alloc_extent(100)
        assert extent.count == 100
        assert alloc.free_blocks == alloc.total_blocks - 100

    def test_next_fit_from_hint(self, kernel):
        alloc = kernel.nvm_allocator
        first = alloc.alloc_extent(10)
        second = alloc.alloc_extent(10)
        assert second.pfn == first.pfn + 10

    def test_alignment_honored(self):
        kernel = Kernel(MachineConfig(dram_bytes=256 * MIB, nvm_bytes=1 * GIB))
        alloc = kernel.nvm_allocator
        alloc.alloc_extent(3)  # misalign the hint
        extent = alloc.alloc_extent(512, align_frames=512)
        assert extent.pfn % 512 == 0

    def test_free_extent_returns_blocks(self, kernel):
        alloc = kernel.nvm_allocator
        extent = alloc.alloc_extent(64)
        free_before = alloc.free_blocks
        alloc.free_extent(extent)
        assert alloc.free_blocks == free_before + 64

    def test_exhaustion_raises_nospace(self, kernel):
        alloc = kernel.nvm_allocator
        with pytest.raises(NoSpaceError):
            alloc.alloc_extent(alloc.total_blocks + 1)

    def test_best_effort_fragmented_allocation(self, kernel):
        alloc = kernel.nvm_allocator
        held = [alloc.alloc_extent(1) for _ in range(3)]
        # Interleave frees to fragment.
        alloc.free_extent(held[1])
        pieces = alloc.alloc_best_effort(alloc.free_blocks)
        assert sum(piece.count for piece in pieces) > 0
        assert alloc.free_blocks == 0

    def test_charged_per_extent_not_per_block(self, kernel):
        with kernel.measure() as small:
            kernel.nvm_allocator.alloc_extent(1)
        with kernel.measure() as big:
            kernel.nvm_allocator.alloc_extent(10_000)
        assert small.elapsed_ns == big.elapsed_ns  # O(1) per extent

    def test_bad_count_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.nvm_allocator.alloc_extent(0)


class TestPmfsFiles:
    def test_create_allocates_one_extent(self, fs):
        inode = fs.create("/big", size=4 * MIB)
        assert fs.extent_count(inode) == 1

    def test_frame_runs_per_extent(self, fs, kernel):
        inode = fs.create("/big", size=4 * MIB)
        before = kernel.counters.get("extent_lookup")
        runs = list(fs.backing_for(inode).frame_runs(0, 1024))
        assert len(runs) == 1  # one extent, one run — the O(1) economy
        assert kernel.counters.get("extent_lookup") - before == 1

    def test_growth_merges_adjacent_extents(self, fs):
        inode = fs.create("/grow", size=4 * KIB)
        fs.truncate(inode, 8 * KIB)
        # Next-fit makes the second extent physically adjacent -> merged.
        assert fs.extent_count(inode) == 1

    def test_write_past_eof_extends(self, fs):
        with fs.open("/ext", create=True) as handle:
            handle.pwrite(10 * PAGE_SIZE, b"x")
        inode = fs.lookup("/ext")
        assert inode.page_count == 11

    def test_shrink_returns_blocks(self, fs, kernel):
        inode = fs.create("/shrink", size=16 * KIB)
        free_before = kernel.nvm_allocator.free_blocks
        fs.truncate(inode, 4 * KIB)
        assert kernel.nvm_allocator.free_blocks == free_before + 3

    def test_unlink_frees_extents(self, fs, kernel):
        fs.create("/gone", size=1 * MIB)
        free_before = kernel.nvm_allocator.free_blocks
        fs.unlink("/gone")
        assert kernel.nvm_allocator.free_blocks == free_before + 256

    def test_journal_records_metadata_ops(self, fs):
        journal_before = len(fs.journal)
        fs.create("/j", size=4 * KIB)
        assert len(fs.journal) > journal_before

    def test_nvm_technology(self, fs):
        from repro.hw.costmodel import MemoryTechnology

        assert fs.tech is MemoryTechnology.NVM

    def test_dax_mmap_setup_cost(self, fs, kernel):
        assert fs.mmap_setup_extra_ns == kernel.costs.dax_setup_ns
        fs.dax = False
        assert fs.mmap_setup_extra_ns == 0
        fs.dax = True


class TestPersistence:
    def test_crash_preserves_files(self, fs):
        with fs.open("/survive", create=True) as handle:
            handle.write(b"important")
        fs.crash()
        with fs.open("/survive") as handle:
            assert handle.read(9) == b"important"

    def test_crash_replays_and_clears_journal(self, fs):
        fs.create("/a", size=4 * KIB)
        assert fs.journal
        fs.crash()
        assert fs.journal == []

    def test_kernel_crash_keeps_pmfs_loses_tmpfs(self, kernel):
        kernel.pmfs.create("/p", size=4 * KIB)
        kernel.tmpfs.create("/t", size=4 * KIB)
        kernel.crash()
        assert kernel.pmfs.exists("/p")
        assert not kernel.tmpfs.exists("/t")
