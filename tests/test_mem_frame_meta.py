"""Frame metadata: the struct-page baseline and its charged touches."""

import pytest

from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.mem.frame_meta import FrameMeta, FrameTable, PageFlags


class TestPageFlags:
    def test_paper_counts_25_flags(self):
        # §2: "the Linux PAGE structure has 25 separate flags".
        assert PageFlags.flag_count() == 25

    def test_set_clear_check(self):
        meta = FrameMeta(pfn=1)
        meta.set_flag(PageFlags.DIRTY)
        meta.set_flag(PageFlags.LRU)
        assert meta.has_flag(PageFlags.DIRTY)
        meta.clear_flag(PageFlags.DIRTY)
        assert not meta.has_flag(PageFlags.DIRTY)
        assert meta.has_flag(PageFlags.LRU)


class TestFrameTable:
    def make(self):
        clock = SimClock()
        counters = EventCounters()
        return FrameTable(clock, CostModel(), counters), clock, counters

    def test_touch_charges_time(self):
        table, clock, counters = self.make()
        table.touch(5)
        assert clock.now == CostModel().frame_meta_update_ns
        assert counters.get("frame_meta_touch") == 1

    def test_touch_is_lazy_but_persistent(self):
        table, _, _ = self.make()
        meta = table.touch(7)
        meta.set_flag(PageFlags.REFERENCED)
        assert table.touch(7).has_flag(PageFlags.REFERENCED)
        assert table.tracked_count() == 1

    def test_peek_uncharged(self):
        table, clock, _ = self.make()
        assert table.peek(3) is None
        table.touch(3)
        elapsed = clock.now
        assert table.peek(3) is not None
        assert clock.now == elapsed

    def test_refcounting(self):
        table, _, _ = self.make()
        table.get_ref(1)
        table.get_ref(1)
        assert table.put_ref(1) == 1
        assert table.put_ref(1) == 0

    def test_refcount_underflow_rejected(self):
        table, _, _ = self.make()
        table.touch(1)
        with pytest.raises(ValueError):
            table.put_ref(1)

    def test_negative_pfn_rejected(self):
        table, _, _ = self.make()
        with pytest.raises(ValueError):
            table.touch(-1)

    def test_scan_charges_per_frame(self):
        # The linear cost the paper eliminates: scanning N frames costs N
        # metadata touches.
        table, clock, counters = self.make()
        list(table.scan(iter(range(100))))
        assert counters.get("frame_meta_touch") == 100
        assert clock.now == 100 * CostModel().frame_meta_update_ns

    def test_works_unwired(self):
        table = FrameTable()  # no clock: pure data structure
        meta = table.touch(0)
        assert meta.pfn == 0

    def test_items_iteration(self):
        table, _, _ = self.make()
        table.touch(3)
        table.touch(1)
        assert sorted(pfn for pfn, _ in table.items()) == [1, 3]
