"""DRAM badblock persistence: records survive reboot, torn appends don't lie."""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan
from repro.errors import SimulatedCrashError
from repro.ras import DRAM_BADBLOCK_PATH, FaultKind, MediaFaultModel


@pytest.fixture
def ras_kernel(kernel):
    kernel.arm_ras(model=MediaFaultModel(seed=0, faults_per_bind=0))
    return kernel


def _free_dram_pfn(kernel) -> int:
    pfn = kernel.dram_buddy.alloc(0)
    kernel.dram_buddy.free(pfn)
    return pfn


def _reboot(kernel):
    """Power-cycle and re-arm RAS: the fresh engine adopts persisted records."""
    kernel.crash()
    return kernel.arm_ras(model=MediaFaultModel(seed=0, faults_per_bind=0))


class TestPersistence:
    def test_retirement_appends_a_record(self, ras_kernel):
        kernel = ras_kernel
        pfn = _free_dram_pfn(kernel)
        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        assert kernel.ras.retire_frame(pfn)
        assert kernel.pmfs.exists(DRAM_BADBLOCK_PATH)
        assert pfn in kernel.ras.dram_badblock_pfns()
        assert kernel.counters.get("ras_badblock_persisted") == 1
        assert kernel.ras.audit() == []

    def test_records_survive_reboot_and_readopt(self, ras_kernel):
        kernel = ras_kernel
        pfn = _free_dram_pfn(kernel)
        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        assert kernel.ras.retire_frame(pfn)

        engine = _reboot(kernel)
        assert pfn in engine.dram_badblock_pfns()
        assert pfn in engine.model.retired
        assert kernel.counters.get("ras_dram_badblock_adopted") >= 1
        # The frame stays out of service across the power cycle.
        assert pfn in kernel.dram_buddy.retired_frames
        assert engine.audit() == []

    def test_without_pmfs_retirement_is_volatile_only(self):
        from repro.kernel import Kernel, MachineConfig
        from repro.units import MIB

        kernel = Kernel(MachineConfig(dram_bytes=64 * MIB, nvm_bytes=0))
        kernel.arm_ras(model=MediaFaultModel(seed=0, faults_per_bind=0))
        pfn = _free_dram_pfn(kernel)
        assert kernel.ras.retire_frame(pfn)
        assert kernel.ras.dram_badblock_pfns() == frozenset()
        assert kernel.ras.audit() == []  # no durable home, no obligation


class TestCrashWindows:
    def test_crash_before_persist_loses_the_record_retry_closes(
        self, ras_kernel
    ):
        """The window between buddy retirement and the record append."""
        kernel = ras_kernel
        pfn = _free_dram_pfn(kernel)
        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        kernel.arm_chaos(FaultPlan.crash_at_site("ras.badblock.persist"))

        with pytest.raises(SimulatedCrashError):
            kernel.ras.retire_frame(pfn)

        engine = _reboot(kernel)
        # The power cut landed before the append: no record, so a real
        # reboot would put the frame back in service.  The fault is
        # still live, so re-detection re-retires it and closes the
        # window (the buddy-side retirement is idempotent).
        assert pfn not in engine.dram_badblock_pfns()
        engine.model.inject(pfn, FaultKind.DEAD)
        assert engine.retire_frame(pfn)
        assert pfn in engine.dram_badblock_pfns()
        assert engine.audit() == []

    def test_torn_append_reads_as_no_record(self, ras_kernel):
        """A torn append leaves an all-zero chunk the loader must skip."""
        kernel = ras_kernel
        first = _free_dram_pfn(kernel)
        kernel.ras.model.inject(first, FaultKind.DEAD)
        assert kernel.ras.retire_frame(first)

        second = kernel.dram_buddy.alloc(0)
        kernel.dram_buddy.free(second)
        kernel.ras.model.inject(second, FaultKind.DEAD)
        kernel.arm_chaos(FaultPlan.fault_at_site("fs.write.torn", "torn"))
        with pytest.raises(SimulatedCrashError):
            kernel.ras.retire_frame(second)

        engine = _reboot(kernel)
        # Only the half-written high bytes of (pfn+1) landed — zeros,
        # because simulated pfns fit 32 bits.  The loader skips the
        # zero chunk instead of resurrecting frame 2^64-1.
        assert first in engine.dram_badblock_pfns()
        assert second not in engine.dram_badblock_pfns()

        engine.model.inject(second, FaultKind.DEAD)
        assert engine.retire_frame(second)
        assert second in engine.dram_badblock_pfns()
        assert engine.audit() == []
