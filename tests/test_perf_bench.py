"""Bench registry, runner, and BENCH_tier1.json schema round-trips."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf.bench import (
    FULL_ROUNDS,
    QUICK_BATCH_DIVISOR,
    QUICK_ROUNDS,
    SCHEMA,
    SCHEMA_VERSION,
    TIER1_OPS,
    OpResult,
    build_document,
    calibrate,
    env_fingerprint,
    load_document,
    ops_by_name,
    results_table,
    run_op,
    run_suite,
    validate_document,
    write_document,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

FAKE_ENV = {
    "python": "3.0.0",
    "implementation": "CPython",
    "platform": "test",
    "machine": "test",
    "cpus": 1,
    "calibration_ns": 1_000_000.0,
}


def fake_results(**medians: float):
    return [
        OpResult(name=name, median_ns=ns, ops_per_sec=1e9 / ns,
                 rounds=3, batch=8)
        for name, ns in medians.items()
    ]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registry_covers_at_least_twelve_unique_ops(self):
        names = [op.name for op in TIER1_OPS]
        assert len(names) == len(set(names))
        assert len(names) >= 12  # the issue's trajectory floor

    def test_ops_by_name_filters_and_rejects_unknown(self):
        subset = ops_by_name(["kernel.fork", "pmfs.read"])
        assert [op.name for op in subset] == ["kernel.fork", "pmfs.read"]
        assert len(ops_by_name()) == len(TIER1_OPS)
        with pytest.raises(KeyError, match="no.such.op"):
            ops_by_name(["no.such.op"])

    def test_quick_batch_is_divided_with_floor_one(self):
        for op in TIER1_OPS:
            assert op.batch_for(quick=False) == op.batch
            assert op.batch_for(quick=True) == max(
                1, op.batch // QUICK_BATCH_DIVISOR
            )

    def test_every_op_prepares_and_runs(self):
        # One invocation per op: prepare() must hand back a callable that
        # survives at least one call on a fresh machine.
        for op in TIER1_OPS:
            fn = op.prepare()
            fn()


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class TestRunner:
    def test_run_op_median_uses_injected_clock(self):
        op = ops_by_name(["syscall.mmap_anon"])[0]
        ticks = iter(range(0, 10**9, 1000))
        result = run_op(op, rounds=2, quick=True,
                        clock_ns=lambda: next(ticks))
        # Each round reads the clock twice -> elapsed exactly 1000 ns.
        assert result.median_ns == 1000 / op.batch_for(True)
        assert result.rounds == 2
        assert result.batch == op.batch_for(True)

    def test_run_op_rejects_zero_rounds(self):
        with pytest.raises(ValueError, match="rounds"):
            run_op(TIER1_OPS[0], rounds=0)

    def test_run_suite_subset_and_progress(self):
        seen = []
        results = run_suite(
            names=["kernel.spawn_exit"], quick=True, rounds=1,
            progress=seen.append,
        )
        assert [r.name for r in results] == ["kernel.spawn_exit"]
        assert results[0].median_ns > 0
        assert len(seen) == 1 and "kernel.spawn_exit" in seen[0]

    def test_round_defaults(self):
        assert QUICK_ROUNDS < FULL_ROUNDS

    def test_results_table_lists_every_op(self):
        table = results_table(fake_results(**{"a.b": 10.0, "c.d": 20.0}))
        assert "a.b" in table and "c.d" in table

    def test_calibrate_positive(self):
        assert calibrate(rounds=1) > 0


# ----------------------------------------------------------------------
# Document schema
# ----------------------------------------------------------------------
class TestDocument:
    def test_build_and_validate(self):
        document = build_document(
            fake_results(**{"x.y": 123.0}), env=FAKE_ENV, mode="quick"
        )
        assert document["schema"] == SCHEMA
        assert document["version"] == SCHEMA_VERSION
        assert validate_document(document) == []

    def test_write_load_round_trip(self, tmp_path):
        document = build_document(
            fake_results(**{"x.y": 123.0, "z.w": 5.5}), env=FAKE_ENV
        )
        path = tmp_path / "bench.json"
        write_document(str(path), document)
        assert load_document(str(path)) == document
        # Stable serialization: keys sorted, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(
            document, indent=1, sort_keys=True
        ) + "\n"

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.pop("ops"), "ops block"),
            (lambda d: d.update(schema="other/v9"), "schema"),
            (lambda d: d.update(version=99), "version"),
            (lambda d: d["env"].pop("calibration_ns"), "calibration_ns"),
            (lambda d: d["ops"]["x.y"].update(median_ns=-1), "median_ns"),
            (lambda d: d["ops"]["x.y"].update(rounds=0), "rounds"),
        ],
    )
    def test_validate_rejects_broken_documents(self, mutate, fragment):
        document = build_document(
            fake_results(**{"x.y": 123.0}), env=dict(FAKE_ENV)
        )
        document["env"] = dict(FAKE_ENV)
        mutate(document)
        problems = validate_document(document)
        assert problems
        assert any(fragment in problem for problem in problems)

    def test_load_document_raises_on_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"schema\": \"nope\"}\n")
        with pytest.raises(ValueError, match="not a valid"):
            load_document(str(path))

    def test_env_fingerprint_shape(self):
        env = env_fingerprint(calibration_ns=42.0)
        assert env["calibration_ns"] == 42.0
        for key in ("python", "implementation", "platform", "machine",
                    "cpus"):
            assert key in env


# ----------------------------------------------------------------------
# The committed trajectory itself
# ----------------------------------------------------------------------
class TestCommittedBaseline:
    def test_committed_baseline_is_valid_and_complete(self):
        document = load_document(str(REPO_ROOT / "BENCH_tier1.json"))
        ops = document["ops"]
        assert len(ops) >= 12
        # Every registered op is in the committed trajectory and vice
        # versa — a drift either way silently weakens the CI gate.
        assert set(ops) == {op.name for op in TIER1_OPS}
