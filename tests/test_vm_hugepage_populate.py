"""Huge-page populate paths through the vm layer."""

import pytest

from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, HUGE_PAGE_2M, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags, Protection


@pytest.fixture
def machine():
    kernel = Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
    process = kernel.spawn("p")
    return kernel, process, kernel.syscalls(process)


def huge_map(kernel, process, sys, size=4 * MIB):
    fd = sys.open(kernel.pmfs, "/huge", create=True, size=size)
    va = process.space.pick_address(size, alignment=HUGE_PAGE_2M)
    sys.mmap(
        size, fd=fd,
        flags=MapFlags.SHARED | MapFlags.POPULATE | MapFlags.HUGEPAGE,
        addr=va,
    )
    return va


class TestHugePopulate:
    def test_huge_ptes_installed(self, machine):
        kernel, process, sys = machine
        va = huge_map(kernel, process, sys)
        pte = process.space.page_table.lookup(va)
        assert pte.page_size == HUGE_PAGE_2M
        assert process.space.page_table.leaf_count() == 2

    def test_access_through_huge_mapping(self, machine):
        kernel, process, sys = machine
        va = huge_map(kernel, process, sys)
        paddr = kernel.access(process, va + 3 * MIB + 123)
        inode = kernel.pmfs.lookup("/huge")
        base_pfn = kernel.pmfs._tree_of(inode).extents()[0].pfn
        assert paddr == base_pfn * PAGE_SIZE + 3 * MIB + 123

    def test_one_tlb_entry_covers_2mib(self, machine):
        kernel, process, sys = machine
        va = huge_map(kernel, process, sys)
        kernel.access(process, va)
        before = kernel.counters.get("tlb_miss")
        kernel.access_range(process, va, HUGE_PAGE_2M)  # 512 page touches
        assert kernel.counters.get("tlb_miss") == before
        assert kernel.tlb.resident_count(HUGE_PAGE_2M) >= 1

    def test_resident_pages_counts_4k_units(self, machine):
        kernel, process, sys = machine
        huge_map(kernel, process, sys, size=4 * MIB)
        assert process.space.resident_pages() == 1024

    def test_munmap_huge_mapping(self, machine):
        from repro.errors import ProtectionError

        kernel, process, sys = machine
        va = huge_map(kernel, process, sys)
        kernel.access(process, va)
        sys.munmap(va, 4 * MIB)
        assert process.space.resident_pages() == 0
        with pytest.raises(ProtectionError):
            kernel.access(process, va)

    def test_unaligned_file_degrades_to_small_pages(self, machine):
        kernel, process, sys = machine
        kernel.nvm_allocator.alloc_extent(3)  # skew physical alignment
        saved = kernel.pmfs.extent_align_frames
        kernel.pmfs.extent_align_frames = 1
        try:
            fd = sys.open(kernel.pmfs, "/skewed", create=True, size=2 * MIB)
        finally:
            kernel.pmfs.extent_align_frames = saved
        va = process.space.pick_address(2 * MIB, alignment=HUGE_PAGE_2M)
        sys.mmap(
            2 * MIB, fd=fd,
            flags=MapFlags.SHARED | MapFlags.POPULATE | MapFlags.HUGEPAGE,
            addr=va,
        )
        pte = process.space.page_table.lookup(va)
        assert pte.page_size == PAGE_SIZE  # graceful degradation
