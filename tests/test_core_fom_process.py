"""FOM process launch: segments as files, thread stacks, O(#files) exit."""

import pytest

from repro.core.fom import FileOnlyMemory, MapStrategy, launch_fom_process
from repro.errors import ProtectionError
from repro.units import KIB, MIB
from repro.vm.vma import Protection


@pytest.fixture
def env(aligned_kernel):
    return aligned_kernel, FileOnlyMemory(aligned_kernel)


def launch(fom, **kw):
    defaults = dict(code_bytes=1 * MIB, heap_bytes=4 * MIB, stack_bytes=1 * MIB)
    defaults.update(kw)
    return launch_fom_process(fom, "app", **defaults)


class TestLaunch:
    def test_three_segment_files(self, env):
        kernel, fom = env
        fp = launch(fom)
        assert fp.segment_count == 3
        assert fom.fs.exists(fp.heap.path)
        assert len(fom.regions_of(fp.process)) == 3

    def test_segments_usable_without_faults(self, env):
        kernel, fom = env
        fp = launch(fom)
        kernel.access(fp.process, fp.heap.vaddr, write=True)
        kernel.access(fp.process, fp.stack.vaddr, write=True)
        kernel.access(fp.process, fp.code.vaddr)
        assert kernel.counters.get("fault_trap") == 0

    def test_code_segment_not_writable(self, env):
        kernel, fom = env
        fp = launch(fom)
        with pytest.raises(ProtectionError):
            kernel.access(fp.process, fp.code.vaddr, write=True)

    def test_named_code_shared_between_launches(self, env):
        kernel, fom = env
        first = launch(fom, code_path="/bin/app")
        second = launch(fom, code_path="/bin/app")
        assert first.code.inode is second.code.inode
        assert first.code.inode.persistent

    def test_launch_cost_independent_of_segment_size(self, env):
        kernel, fom = env
        with kernel.measure() as small:
            launch(fom, heap_bytes=2 * MIB)
        with kernel.measure() as big:
            launch(fom, heap_bytes=256 * MIB)
        # Same extent count; PTE count grows only with 2 MiB pages.
        assert small.counter_delta.get("extent_alloc") == big.counter_delta.get(
            "extent_alloc"
        )


class TestThreadStacks:
    def test_thread_stack_is_single_extent_file(self, env):
        kernel, fom = env
        fp = launch(fom)
        stack = fp.create_thread_stack(512 * KIB)
        assert kernel.pmfs.extent_count(stack.inode) == 1
        kernel.access(fp.process, stack.vaddr, write=True)
        assert fp.segment_count == 4

    def test_thread_stack_no_per_page_metadata(self, env):
        kernel, fom = env
        fp = launch(fom)
        with kernel.measure() as m:
            fp.create_thread_stack(1 * MIB)
        # No per-4KiB frame-metadata churn: the file extent is one unit.
        assert m.counter_delta.get("frame_meta_touch", 0) == 0


class TestExit:
    def test_exit_releases_all_files(self, env):
        kernel, fom = env
        fp = launch(fom)
        fp.create_thread_stack(512 * KIB)
        released = fp.exit()
        assert released == 4
        assert not fp.process.alive
        assert fom.regions_of(fp.process) == []

    def test_exit_returns_storage(self, env):
        kernel, fom = env
        free_before = kernel.nvm_allocator.free_blocks
        fp = launch(fom)
        fp.exit()
        assert kernel.nvm_allocator.free_blocks == free_before

    def test_exit_keeps_named_code_file(self, env):
        kernel, fom = env
        fp = launch(fom, code_path="/bin/app")
        fp.exit()
        assert fom.fs.exists("/bin/app")
