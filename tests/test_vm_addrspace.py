"""Address spaces: mmap, faults, COW, populate, munmap, mprotect."""

import pytest

from repro.errors import MappingError, ProtectionError
from repro.kernel import Kernel, MachineConfig
from repro.paging.fault import FaultType
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.vm.vma import AnonBacking, MapFlags, Protection


@pytest.fixture
def machine():
    kernel = Kernel(MachineConfig(dram_bytes=512 * MIB, nvm_bytes=1 * GIB))
    process = kernel.spawn("t")
    return kernel, process, kernel.syscalls(process)


class TestAnonymousMmap:
    def test_demand_mapping_faults_on_touch(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(64 * KIB)
        assert process.space.resident_pages() == 0
        kernel.access(process, va)
        assert process.space.resident_pages() == 1
        assert process.space.fault_stats[FaultType.MINOR] == 1

    def test_populate_eliminates_faults(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(64 * KIB, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
        assert process.space.resident_pages() == 16
        kernel.access_range(process, va, 64 * KIB)
        assert process.space.fault_stats[FaultType.MINOR] == 0

    def test_length_rounds_to_pages(self, machine):
        _, process, sys = machine
        sys.mmap(100)
        assert process.space.vmas[-1].length == PAGE_SIZE

    def test_zero_length_rejected(self, machine):
        _, _, sys = machine
        with pytest.raises(MappingError):
            sys.mmap(0)

    def test_adjacent_anon_mappings_do_not_merge_distinct_backings(self, machine):
        # Each mmap gets a fresh AnonBacking, so Linux-style merging does
        # not apply (different "files").
        _, process, sys = machine
        sys.mmap(PAGE_SIZE)
        sys.mmap(PAGE_SIZE)
        assert len(process.space.vmas) == 2

    def test_reads_return_zeros_semantics(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(PAGE_SIZE)
        # Access works and is backed by a zeroed frame (zero cost charged).
        kernel.access(process, va)
        assert process.space.resident_pages() == 1


class TestFaultHandling:
    def test_unmapped_access_segfaults(self, machine):
        kernel, process, _ = machine
        with pytest.raises(ProtectionError, match="segfault"):
            kernel.access(process, 0xDEAD000)

    def test_write_to_readonly_segfaults(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(PAGE_SIZE, prot=Protection.READ)
        kernel.access(process, va)  # read ok
        with pytest.raises(ProtectionError, match="read-only"):
            kernel.access(process, va, write=True)

    def test_read_from_prot_none_segfaults(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(PAGE_SIZE, prot=Protection.NONE)
        with pytest.raises(ProtectionError):
            kernel.access(process, va)

    def test_fault_counters_bumped(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(16 * KIB)
        kernel.access_range(process, va, 16 * KIB)
        assert kernel.counters.get("fault_minor") == 4
        assert kernel.counters.get("fault_trap") == 4

    def test_second_touch_no_fault(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(PAGE_SIZE)
        kernel.access(process, va)
        before = kernel.counters.get("fault_trap")
        kernel.access(process, va + 64)
        assert kernel.counters.get("fault_trap") == before


class TestFileMappingAndCow:
    def _file_fd(self, kernel, sys, size=16 * KIB, fs=None):
        fs = fs or kernel.tmpfs
        return sys.open(fs, "/cowfile", create=True, size=size)

    def test_shared_file_write_hits_file_frame(self, machine):
        kernel, process, sys = machine
        fd = self._file_fd(kernel, sys)
        va = sys.mmap(16 * KIB, fd=fd, flags=MapFlags.SHARED)
        paddr = kernel.access(process, va, write=True)
        inode = process.fd(fd).inode
        cached = kernel.tmpfs._pages[inode.ino][0]
        assert paddr // PAGE_SIZE == cached

    def test_private_file_write_triggers_cow(self, machine):
        kernel, process, sys = machine
        fd = self._file_fd(kernel, sys)
        va = sys.mmap(16 * KIB, fd=fd, flags=MapFlags.PRIVATE)
        kernel.access(process, va)  # read fault: read-only mapping
        kernel.access(process, va, write=True)  # COW fault
        assert process.space.fault_stats[FaultType.COW] == 1
        inode = process.fd(fd).inode
        pte = process.space.page_table.lookup(va)
        assert pte.pfn != kernel.tmpfs._pages[inode.ino][0]

    def test_private_write_first_copies_immediately(self, machine):
        kernel, process, sys = machine
        fd = self._file_fd(kernel, sys)
        va = sys.mmap(16 * KIB, fd=fd, flags=MapFlags.PRIVATE)
        kernel.access(process, va + PAGE_SIZE, write=True)
        assert kernel.counters.get("cow_copy") == 1
        # Subsequent reads stay on the private copy.
        pte = process.space.page_table.lookup(va + PAGE_SIZE)
        assert pte.writable

    def test_two_processes_see_own_private_copies(self, machine):
        kernel, p1, sys1 = machine
        p2 = kernel.spawn("other")
        sys2 = kernel.syscalls(p2)
        fd1 = sys1.open(kernel.tmpfs, "/shared2", create=True, size=PAGE_SIZE)
        fd2 = sys2.open(kernel.tmpfs, "/shared2")
        va1 = sys1.mmap(PAGE_SIZE, fd=fd1, flags=MapFlags.PRIVATE)
        va2 = sys2.mmap(PAGE_SIZE, fd=fd2, flags=MapFlags.PRIVATE)
        pa1 = kernel.access(p1, va1, write=True)
        pa2 = kernel.access(p2, va2, write=True)
        assert pa1 != pa2


class TestMunmap:
    def test_whole_vma_unmap(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(64 * KIB, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
        sys.munmap(va, 64 * KIB)
        assert process.space.resident_pages() == 0
        assert process.space.vmas == []

    def test_unmap_returns_frames(self, machine):
        kernel, process, sys = machine
        free_before = kernel.dram_buddy.free_frames
        va = sys.mmap(64 * KIB, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
        sys.munmap(va, 64 * KIB)
        # Page-table node frames stay allocated; data frames return.
        assert kernel.dram_buddy.free_frames >= free_before - 8

    def test_unmap_frees_private_cow_copies(self, machine):
        kernel, process, sys = machine
        fd = sys.open(kernel.tmpfs, "/cowleak", create=True, size=16 * KIB)
        va = sys.mmap(16 * KIB, fd=fd, flags=MapFlags.PRIVATE)
        pfns = [
            kernel.access(process, va + i * PAGE_SIZE, write=True) // PAGE_SIZE
            for i in range(4)
        ]
        sys.munmap(va, 16 * KIB)
        # The COW copies belong to the VMA, not the file; the unmap must
        # return every one of them to the buddy.
        for pfn in pfns:
            assert not kernel.dram_buddy.is_allocated(pfn)

    def test_partial_unmap_frees_only_covered_cow_copies(self, machine):
        kernel, process, sys = machine
        fd = sys.open(kernel.tmpfs, "/cowpart", create=True, size=16 * KIB)
        va = sys.mmap(16 * KIB, fd=fd, flags=MapFlags.PRIVATE)
        low = kernel.access(process, va, write=True) // PAGE_SIZE
        high = (
            kernel.access(process, va + 3 * PAGE_SIZE, write=True) // PAGE_SIZE
        )
        sys.munmap(va, PAGE_SIZE)  # prefix only
        assert not kernel.dram_buddy.is_allocated(low)
        assert kernel.dram_buddy.is_allocated(high)
        # The surviving copy still serves the mapping, and the final
        # unmap releases it too.
        assert kernel.access(process, va + 3 * PAGE_SIZE) // PAGE_SIZE == high
        sys.munmap(va + PAGE_SIZE, 15 * KIB)
        assert not kernel.dram_buddy.is_allocated(high)

    def test_unmap_frees_pmfs_cow_copies(self, machine):
        kernel, process, sys = machine
        fd = sys.open(kernel.pmfs, "/cownvm", create=True, size=16 * KIB)
        free_before = kernel.pmfs.allocator.free_blocks
        va = sys.mmap(16 * KIB, fd=fd, flags=MapFlags.PRIVATE)
        kernel.access(process, va, write=True)
        assert kernel.pmfs.allocator.free_blocks == free_before - 1
        sys.munmap(va, 16 * KIB)
        assert kernel.pmfs.allocator.free_blocks == free_before

    def test_prefix_unmap_shrinks_vma(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(16 * KIB)
        sys.munmap(va, 8 * KIB)
        vma = process.space.vmas[0]
        assert vma.start == va + 8 * KIB
        assert vma.backing_offset == 2

    def test_suffix_unmap_shrinks_vma(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(16 * KIB)
        sys.munmap(va + 8 * KIB, 8 * KIB)
        vma = process.space.vmas[0]
        assert vma.end == va + 8 * KIB

    def test_hole_punch_rejected(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(16 * KIB)
        with pytest.raises(MappingError, match="hole"):
            sys.munmap(va + PAGE_SIZE, PAGE_SIZE)

    def test_unmap_invalidates_tlb(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(PAGE_SIZE)
        kernel.access(process, va)
        assert kernel.tlb.resident_count() == 1
        sys.munmap(va, PAGE_SIZE)
        assert kernel.tlb.resident_count() == 0

    def test_access_after_unmap_segfaults(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(PAGE_SIZE)
        kernel.access(process, va)
        sys.munmap(va, PAGE_SIZE)
        with pytest.raises(ProtectionError):
            kernel.access(process, va)


class TestMprotect:
    def test_downgrade_to_readonly(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(8 * KIB, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
        kernel.access(process, va, write=True)
        sys.mprotect(va, 8 * KIB, Protection.READ)
        with pytest.raises(ProtectionError):
            kernel.access(process, va, write=True)

    def test_upgrade_allows_writes(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(PAGE_SIZE, prot=Protection.READ)
        kernel.access(process, va)
        sys.mprotect(va, PAGE_SIZE, Protection.rw())
        kernel.access(process, va, write=True)  # no longer raises

    def test_partial_mprotect_rejected(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(16 * KIB)
        with pytest.raises(MappingError):
            sys.mprotect(va, 8 * KIB, Protection.READ)


class TestDetachVma:
    def test_detach_skips_pte_teardown(self, machine):
        kernel, process, sys = machine
        va = sys.mmap(64 * KIB, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
        vma = process.space.vmas[0]
        before = kernel.counters.get("pte_write")
        process.space.detach_vma(vma)
        # No per-page PTE writes happened during detach.
        assert kernel.counters.get("pte_write") == before
        assert process.space.vmas == []


class TestRangeIsFree:
    def test_empty_space_is_free(self, machine):
        _kernel, process, _sys = machine
        assert process.space.range_is_free(0x10000, 0x20000)

    def test_overlap_with_existing_vma(self, machine):
        _kernel, process, sys = machine
        va = sys.mmap(64 * KIB)
        assert not process.space.range_is_free(va, va + PAGE_SIZE)
        assert not process.space.range_is_free(va - PAGE_SIZE, va + PAGE_SIZE)
        assert not process.space.range_is_free(
            va + 63 * KIB, va + 65 * KIB
        )

    def test_gap_between_vmas_is_free(self, machine):
        _kernel, process, sys = machine
        low = sys.mmap(16 * KIB)
        high = sys.mmap(16 * KIB, addr=low + 64 * KIB)
        assert process.space.range_is_free(low + 16 * KIB, high)
        assert process.space.range_is_free(high + 16 * KIB, high + 32 * KIB)

    def test_exactly_adjacent_is_free(self, machine):
        _kernel, process, sys = machine
        va = sys.mmap(16 * KIB)
        assert process.space.range_is_free(va + 16 * KIB, va + 32 * KIB)
