"""Unit tests for the fault-plan core (`repro.chaos.plan` / `sites`)."""

import pytest

from repro.chaos import FaultPlan, FaultSpec, SITE_ACTIONS, actions_for, is_site
from repro.errors import SimulatedCrashError


class TestSites:
    def test_every_site_allows_crash(self):
        for site in SITE_ACTIONS:
            assert "crash" in actions_for(site)

    def test_extra_actions_are_declared(self):
        assert "error" in actions_for("buddy.alloc")
        assert "torn" in actions_for("fs.write.torn")
        assert "corrupt" in actions_for("pmfs.journal.commit.pre")

    def test_is_site(self):
        assert is_site("pmfs.journal.begin")
        assert not is_site("not.a.site")

    def test_site_names_are_dotted_paths(self):
        for site in SITE_ACTIONS:
            assert "." in site
            assert site == site.lower()


class TestFaultSpecValidation:
    def test_needs_exactly_one_selector(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(site="buddy.alloc")
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(site="buddy.alloc", nth=0, at_hit=3)

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="bogus.site", nth=0)

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown action"):
            FaultSpec(site="buddy.alloc", action="explode", nth=0)

    def test_rejects_action_not_supported_at_site(self):
        with pytest.raises(ValueError, match="does not support"):
            FaultSpec(site="buddy.alloc", action="torn", nth=0)

    def test_at_hit_is_site_agnostic(self):
        with pytest.raises(ValueError, match="leave site unset"):
            FaultSpec(site="buddy.alloc", at_hit=2)
        spec = FaultSpec(at_hit=2)
        assert spec.action == "crash"

    def test_per_site_spec_needs_site(self):
        with pytest.raises(ValueError, match="need a site"):
            FaultSpec(nth=0)


class TestCountingPlan:
    def test_counts_without_firing(self):
        plan = FaultPlan.counting()
        for _ in range(3):
            assert plan.hit("buddy.alloc") is None
        assert plan.hit("slab.grow") is None
        assert plan.total_hits == 4
        assert plan.census() == {"buddy.alloc": 3, "slab.grow": 1}
        assert plan.history == ["buddy.alloc"] * 3 + ["slab.grow"]
        assert plan.injections == []

    def test_describe(self):
        assert FaultPlan.counting().describe() == "FaultPlan.counting()"
        assert "hit2" in FaultPlan.crash_at(2).describe()
        assert "seed=9" in FaultPlan.seeded(9).describe()


class TestScheduledFaults:
    def test_crash_at_global_hit(self):
        plan = FaultPlan.crash_at(2)
        plan.hit("buddy.alloc")
        plan.hit("slab.grow")
        with pytest.raises(SimulatedCrashError, match="buddy.alloc"):
            plan.hit("buddy.alloc")
        assert [i.index for i in plan.injections] == [2]

    def test_crash_at_site_nth(self):
        plan = FaultPlan.crash_at_site("buddy.alloc", nth=1)
        plan.hit("buddy.alloc")  # nth 0: no fire
        plan.hit("slab.grow")  # other site
        with pytest.raises(SimulatedCrashError):
            plan.hit("buddy.alloc")  # nth 1

    def test_non_crash_action_returned_not_raised(self):
        plan = FaultPlan.fault_at_site("buddy.alloc", "error")
        assert plan.hit("buddy.alloc") == "error"
        # Specs fire once: the next hit passes through clean.
        assert plan.hit("buddy.alloc") is None

    def test_power_cut_raises(self):
        plan = FaultPlan.fault_at_site("fs.write.torn", "torn")
        assert plan.hit("fs.write.torn") == "torn"
        with pytest.raises(SimulatedCrashError, match="power failed"):
            plan.power_cut("fs.write.torn")

    def test_multiple_specs(self):
        plan = FaultPlan(
            specs=[
                FaultSpec(site="buddy.alloc", action="error", nth=0),
                FaultSpec(site="slab.grow", action="error", nth=0),
            ]
        )
        assert plan.hit("buddy.alloc") == "error"
        assert plan.hit("slab.grow") == "error"
        assert len(plan.injections) == 2


class TestSeededPlans:
    def _drive(self, plan, hits=200):
        fired = []
        for index in range(hits):
            site = ["buddy.alloc", "slab.grow", "pmfs.journal.begin"][index % 3]
            try:
                action = plan.hit(site)
            except SimulatedCrashError:
                action = "crash"
            if action is not None:
                fired.append((index, site, action))
        return fired

    def test_same_seed_same_faults(self):
        a = self._drive(FaultPlan.seeded(42, rate=0.05, max_faults=5))
        b = self._drive(FaultPlan.seeded(42, rate=0.05, max_faults=5))
        assert a == b
        assert a, "rate=0.05 over 200 hits should fire at least once"

    def test_max_faults_bounds_injections(self):
        plan = FaultPlan.seeded(7, rate=1.0, max_faults=2)
        self._drive(plan)
        assert len(plan.injections) == 2

    def test_site_filter(self):
        plan = FaultPlan.seeded(7, rate=1.0, max_faults=10, sites=["slab.grow"])
        fired = self._drive(plan)
        assert fired
        assert all(site == "slab.grow" for _, site, _ in fired)

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.seeded(1, rate=1.5)

    def test_unknown_site_filter_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.seeded(1, sites=["nope"])


class TestObsIntegration:
    def test_bound_plan_bumps_counters(self, kernel):
        plan = FaultPlan.fault_at_site("buddy.alloc", "error")
        kernel.arm_chaos(plan)
        assert kernel.counters.chaos is plan
        plan.hit("buddy.alloc")
        plan.hit("buddy.alloc")
        assert kernel.counters.get("chaos_site_hit") == 2
        assert kernel.counters.get("chaos_fault_injected") == 1
        kernel.disarm_chaos()
        assert kernel.counters.chaos is None
        assert kernel.chaos is None

    def test_injection_emits_trace_event(self, kernel):
        kernel.tracer.enable()
        plan = FaultPlan.fault_at_site("buddy.alloc", "error")
        kernel.arm_chaos(plan)
        plan.hit("buddy.alloc")
        names = [e.name for e in kernel.tracer.events()]
        assert "chaos_fault" in names
        kernel.disarm_chaos()

    def test_unarmed_components_pay_nothing(self, kernel):
        # No plan armed: hot paths must not bump chaos counters.
        process = kernel.spawn("p")
        sys_calls = kernel.syscalls(process)
        va = sys_calls.mmap(4 * 4096)
        kernel.access(process, va, write=True)
        assert kernel.counters.get("chaos_site_hit") == 0
