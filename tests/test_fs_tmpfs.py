"""tmpfs: page-cache behaviour, per-page costs, volatility."""

import pytest

from repro.units import KIB, PAGE_SIZE


@pytest.fixture
def fs(kernel):
    return kernel.tmpfs


class TestPageCache:
    def test_create_preallocates_pages(self, fs):
        inode = fs.create("/f", size=16 * KIB)
        assert fs.cached_pages(inode) == 4

    def test_per_page_lookup_cost(self, fs, kernel):
        inode = fs.create("/f", size=64 * KIB)
        before = kernel.counters.get("pagecache_lookup")
        backing = fs.backing_for(inode)
        list(backing.frame_runs(0, 16))
        assert kernel.counters.get("pagecache_lookup") - before == 16

    def test_frame_runs_are_single_pages(self, fs):
        inode = fs.create("/f", size=64 * KIB)
        runs = list(fs.backing_for(inode).frame_runs(0, 16))
        assert len(runs) == 16
        assert all(count == 1 for _, _, count in runs)

    def test_hole_fill_allocates_on_demand(self, fs, kernel):
        inode = fs.create("/f")  # size 0: no pages
        backing = fs.backing_for(inode)
        before = kernel.counters.get("pagecache_alloc")
        backing.frame_for(5, write=True)
        assert kernel.counters.get("pagecache_alloc") - before == 1

    def test_frames_are_stable(self, fs):
        inode = fs.create("/f", size=8 * KIB)
        backing = fs.backing_for(inode)
        assert backing.frame_for(1, False) == backing.frame_for(1, True)

    def test_shrink_frees_tail_pages(self, fs, kernel):
        inode = fs.create("/f", size=16 * KIB)
        free_before = kernel.dram_buddy.free_frames
        fs.truncate(inode, 4 * KIB)
        assert kernel.dram_buddy.free_frames == free_before + 3
        assert fs.cached_pages(inode) == 1

    def test_unlink_frees_all_frames(self, fs, kernel):
        fs.create("/f", size=16 * KIB)
        free_before = kernel.dram_buddy.free_frames
        fs.unlink("/f")
        assert kernel.dram_buddy.free_frames == free_before + 4


class TestVolatility:
    def test_not_persistent(self, fs):
        assert not fs.persistent

    def test_crash_loses_everything(self, fs, kernel):
        fs.create("/precious", size=16 * KIB)
        free_before = kernel.dram_buddy.free_frames
        fs.crash()
        assert not fs.exists("/precious")
        assert fs.file_count() == 0
        assert kernel.dram_buddy.free_frames == free_before + 4
