"""Graceful-degradation policy: SIGBUS, EIO, bounded retry, migration."""

from __future__ import annotations

import pytest

from repro.errors import MediaError, MemoryPoisonError
from repro.ras import FaultKind, MediaFaultModel
from repro.units import PAGE_SIZE
from repro.vm.vma import MapFlags


@pytest.fixture
def ras_kernel(kernel):
    """The small default machine with a clean (no sampled faults) RAS
    engine armed, so each test injects exactly the faults it studies."""
    kernel.arm_ras(model=MediaFaultModel(seed=0, faults_per_bind=0))
    return kernel


class TestAnonymousPoison:
    def test_dead_anon_frame_sigbus_kills_only_faulting_process(
        self, ras_kernel
    ):
        kernel = ras_kernel
        victim = kernel.spawn("victim")
        bystander = kernel.spawn("bystander")
        sys_calls = kernel.syscalls(victim)
        va = sys_calls.mmap(
            4 * PAGE_SIZE, flags=MapFlags.PRIVATE | MapFlags.POPULATE
        )
        paddr = kernel.access(victim, va, write=True)
        pfn = paddr // PAGE_SIZE

        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        with pytest.raises(MemoryPoisonError):
            kernel.access(victim, va)

        assert not victim.alive
        assert victim.pid not in kernel.processes
        assert bystander.pid in kernel.processes
        assert kernel.counters.get("ras_sigbus_kill") == 1
        # The exit freed the frame, so quarantine retired it on the spot.
        assert pfn in kernel.ras.model.retired
        assert pfn in kernel.dram_buddy.retired_frames

    def test_poison_read_on_anon_is_fatal_too(self, ras_kernel):
        kernel = ras_kernel
        process = kernel.spawn("p")
        sys_calls = kernel.syscalls(process)
        va = sys_calls.mmap(
            PAGE_SIZE, flags=MapFlags.PRIVATE | MapFlags.POPULATE
        )
        pfn = kernel.access(process, va, write=True) // PAGE_SIZE
        kernel.ras.model.inject(pfn, FaultKind.POISON)
        with pytest.raises(MemoryPoisonError):
            kernel.access(process, va)
        assert process.pid not in kernel.processes

    def test_store_clears_sticky_poison(self, ras_kernel):
        kernel = ras_kernel
        process = kernel.spawn("p")
        sys_calls = kernel.syscalls(process)
        va = sys_calls.mmap(
            PAGE_SIZE, flags=MapFlags.PRIVATE | MapFlags.POPULATE
        )
        pfn = kernel.access(process, va, write=True) // PAGE_SIZE
        kernel.ras.model.inject(pfn, FaultKind.POISON)
        # The overwrite clears the line, as hardware does; nobody dies.
        kernel.access(process, va, write=True)
        assert kernel.counters.get("ras_poison_cleared") == 1
        assert kernel.ras.model.probe(pfn) is None
        assert process.pid in kernel.processes


class TestFileIo:
    def test_dead_file_block_surfaces_eio(self, ras_kernel):
        kernel = ras_kernel
        fs = kernel.pmfs
        process = kernel.spawn("reader")
        sys_calls = kernel.syscalls(process)
        fd = sys_calls.open(fs, "/eio", create=True, size=2 * PAGE_SIZE)
        pfn = fs.charge_block_lookup(fs.lookup("/eio"), 0)

        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        with pytest.raises(MediaError):
            sys_calls.pread(fd, 0, 64)

        # EIO, not SIGBUS: the reader survives the failed read.
        assert process.pid in kernel.processes
        assert kernel.counters.get("ras_read_eio") == 1
        assert kernel.counters.get("ras_sigbus_kill") == 0

    def test_transient_fault_retried_with_charged_backoff(self, ras_kernel):
        kernel = ras_kernel
        fs = kernel.pmfs
        process = kernel.spawn("reader")
        sys_calls = kernel.syscalls(process)
        fd = sys_calls.open(fs, "/flaky", create=True, size=PAGE_SIZE)
        pfn = fs.charge_block_lookup(fs.lookup("/flaky"), 0)

        kernel.ras.model.inject(pfn, FaultKind.TRANSIENT, fail_count=2)
        before = kernel.clock.now
        data = sys_calls.pread(fd, 0, 64)
        assert len(data) == 64

        # Two failed attempts, linear backoff: 1x + 2x the unit wait.
        assert kernel.counters.get("ras_io_retry") == 2
        assert kernel.clock.now - before >= 3 * kernel.costs.ras_backoff_ns
        assert kernel.counters.get("ras_read_eio") == 0

    def test_exhausted_transient_escalates_to_eio(self, ras_kernel):
        kernel = ras_kernel
        fs = kernel.pmfs
        process = kernel.spawn("reader")
        sys_calls = kernel.syscalls(process)
        fd = sys_calls.open(fs, "/worn", create=True, size=PAGE_SIZE)
        pfn = fs.charge_block_lookup(fs.lookup("/worn"), 0)

        # Fails more times than the retry budget allows.
        kernel.ras.model.inject(pfn, FaultKind.TRANSIENT, fail_count=99)
        with pytest.raises(MediaError):
            sys_calls.pread(fd, 0, 64)
        assert kernel.counters.get("ras_read_eio") == 1


class TestMigration:
    def test_file_backed_poison_migrates_and_access_recovers(
        self, ras_kernel
    ):
        kernel = ras_kernel
        fs = kernel.pmfs
        process = kernel.spawn("mapper")
        sys_calls = kernel.syscalls(process)
        fd = sys_calls.open(fs, "/mapped", create=True, size=4 * PAGE_SIZE)
        va = sys_calls.mmap(
            4 * PAGE_SIZE, fd=fd, flags=MapFlags.SHARED | MapFlags.POPULATE
        )
        old_paddr = kernel.access(process, va, write=True)
        old_pfn = old_paddr // PAGE_SIZE

        kernel.ras.model.inject(old_pfn, FaultKind.DEAD)
        new_paddr = kernel.access(process, va)

        # The file system migrated the extent off the dead media and the
        # access re-faulted onto the fresh frame — nobody died.
        assert new_paddr != old_paddr
        assert process.pid in kernel.processes
        assert kernel.counters.get("ras_extent_migrated") == 1
        assert kernel.counters.get("ras_recovered_access") == 1
        assert kernel.counters.get("ras_sigbus_kill") == 0
        assert old_pfn in kernel.ras.badblock_pfns()
        assert fs.fsck() == []

    def test_private_cow_copy_is_not_migrated(self, ras_kernel):
        kernel = ras_kernel
        fs = kernel.pmfs
        process = kernel.spawn("cow")
        sys_calls = kernel.syscalls(process)
        fd = sys_calls.open(fs, "/cow", create=True, size=2 * PAGE_SIZE)
        va = sys_calls.mmap(
            2 * PAGE_SIZE, fd=fd, flags=MapFlags.PRIVATE | MapFlags.POPULATE
        )
        # The write breaks COW: this frame is private, not file data.
        pfn = kernel.access(process, va, write=True) // PAGE_SIZE
        assert pfn in set(
            process.space.find_vma(va).private_copies.values()
        )

        kernel.ras.model.inject(pfn, FaultKind.DEAD)
        with pytest.raises(MemoryPoisonError):
            kernel.access(process, va)
        # No durable home for a private copy: SIGBUS, no migration.
        assert kernel.counters.get("ras_sigbus_kill") == 1
        assert kernel.counters.get("ras_extent_migrated") == 0
