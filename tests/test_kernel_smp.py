"""SMP TLB shootdowns: invalidation broadcasts cost per remote core."""

import pytest

from repro.errors import ConfigurationError
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE


def make_kernel(cpus):
    return Kernel(
        MachineConfig(dram_bytes=256 * MIB, nvm_bytes=1 * GIB, cpus=cpus)
    )


class TestShootdowns:
    def test_single_cpu_no_ipis(self):
        kernel = make_kernel(1)
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        va = sys.mmap(16 * KIB)
        kernel.access(process, va)
        sys.munmap(va, 16 * KIB)
        assert kernel.counters.get("tlb_shootdown_ipi") == 0

    def test_remote_cpus_pay_per_invalidation(self):
        kernel = make_kernel(4)
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        va = sys.mmap(16 * KIB)
        kernel.access(process, va)
        sys.munmap(va, 16 * KIB)
        # One batched broadcast to 3 remote cores.
        assert kernel.counters.get("tlb_shootdown_ipi") == 3

    def test_munmap_dearer_on_bigger_machines(self):
        costs = {}
        for cpus in (1, 16):
            kernel = make_kernel(cpus)
            process = kernel.spawn("p")
            sys = kernel.syscalls(process)
            va = sys.mmap(16 * KIB)
            kernel.access(process, va)
            with kernel.measure() as m:
                sys.munmap(va, 16 * KIB)
            costs[cpus] = m.elapsed_ns
        assert costs[16] > costs[1] + 10 * kernel.costs.tlb_shootdown_ipi_ns

    def test_per_page_eviction_storms_vs_batched_unmap(self):
        # Evicting N pages one at a time broadcasts N IPIs; munmapping
        # the region broadcasts once — the batching argument for
        # whole-file operations.
        kernel = make_kernel(8)
        process = kernel.spawn("p", track_lru=True)
        sys = kernel.syscalls(process)
        va = sys.mmap(32 * KIB)
        kernel.access_range(process, va, 32 * KIB)
        before = kernel.counters.get("tlb_shootdown_ipi")
        for page in range(8):
            process.space.evict_page(va + page * PAGE_SIZE)
        per_page = kernel.counters.get("tlb_shootdown_ipi") - before
        assert per_page == 8 * 7

        kernel2 = make_kernel(8)
        process2 = kernel2.spawn("p")
        sys2 = kernel2.syscalls(process2)
        va2 = sys2.mmap(32 * KIB)
        kernel2.access_range(process2, va2, 32 * KIB)
        before = kernel2.counters.get("tlb_shootdown_ipi")
        sys2.munmap(va2, 32 * KIB)
        assert kernel2.counters.get("tlb_shootdown_ipi") - before == 7

    def test_bad_cpu_count_rejected(self):
        with pytest.raises(ConfigurationError):
            make_kernel(0)
