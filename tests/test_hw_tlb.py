"""Page TLB: multi-size arrays, LRU sets, ASIDs, invalidation."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.tlb import Tlb, TlbEntry
from repro.units import HUGE_PAGE_1G, HUGE_PAGE_2M, PAGE_SIZE


def entry(vpn, pfn=1, size=PAGE_SIZE, writable=True, asid=0):
    return TlbEntry(vpn=vpn, pfn=pfn, page_size=size, writable=writable, asid=asid)


class TestLookupInsert:
    def test_miss_on_empty(self):
        assert Tlb().lookup(0x1000) is None

    def test_hit_after_insert(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=3, pfn=7))
        hit = tlb.lookup(3 * PAGE_SIZE + 123)
        assert hit is not None and hit.pfn == 7

    def test_entry_addresses(self):
        e = entry(vpn=3, pfn=7)
        assert e.vaddr == 3 * PAGE_SIZE
        assert e.paddr == 7 * PAGE_SIZE

    def test_huge_page_hit_anywhere_in_page(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=1, pfn=2, size=HUGE_PAGE_2M))
        assert tlb.lookup(HUGE_PAGE_2M + 12345).pfn == 2

    def test_gigabyte_page(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=0, pfn=0, size=HUGE_PAGE_1G))
        assert tlb.lookup(HUGE_PAGE_1G - 1) is not None

    def test_unsupported_page_size_rejected(self):
        with pytest.raises(ValueError):
            Tlb().insert(entry(vpn=0, size=8192))

    def test_asid_isolation(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=5, pfn=9, asid=1))
        assert tlb.lookup(5 * PAGE_SIZE, asid=2) is None
        assert tlb.lookup(5 * PAGE_SIZE, asid=1).pfn == 9


class TestReplacement:
    def test_set_overflow_evicts_lru(self):
        tlb = Tlb(geometry={PAGE_SIZE: (1, 2)})  # one set, two ways
        tlb.insert(entry(vpn=0, pfn=0))
        tlb.insert(entry(vpn=1, pfn=1))
        evicted = tlb.insert(entry(vpn=2, pfn=2))
        assert evicted is not None and evicted.vpn == 0
        assert tlb.lookup(0) is None
        assert tlb.lookup(PAGE_SIZE) is not None

    def test_lookup_refreshes_lru(self):
        tlb = Tlb(geometry={PAGE_SIZE: (1, 2)})
        tlb.insert(entry(vpn=0, pfn=0))
        tlb.insert(entry(vpn=1, pfn=1))
        tlb.lookup(0)  # make vpn=0 most recent
        evicted = tlb.insert(entry(vpn=2, pfn=2))
        assert evicted.vpn == 1

    def test_capacity(self):
        tlb = Tlb()
        assert tlb.capacity(PAGE_SIZE) == 128 * 12

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Tlb(geometry={PAGE_SIZE: (0, 4)})


class TestInvalidation:
    def test_invalidate_single(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=4))
        assert tlb.invalidate(4 * PAGE_SIZE) == 1
        assert tlb.lookup(4 * PAGE_SIZE) is None

    def test_invalidate_miss_returns_zero(self):
        assert Tlb().invalidate(0) == 0

    def test_invalidate_range_overlap_semantics(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=0, pfn=1, size=HUGE_PAGE_2M))
        # Range covering any byte of the huge page must drop it.
        assert tlb.invalidate_range(PAGE_SIZE, PAGE_SIZE) == 1

    def test_invalidate_range_spares_outside(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=0))
        tlb.insert(entry(vpn=10))
        dropped = tlb.invalidate_range(0, 5 * PAGE_SIZE)
        assert dropped == 1
        assert tlb.lookup(10 * PAGE_SIZE) is not None

    def test_invalidate_range_empty_length(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=0))
        assert tlb.invalidate_range(0, 0) == 0
        assert tlb.lookup(0) is not None

    def test_invalidate_range_respects_asid(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=3, asid=1))
        tlb.insert(entry(vpn=3, asid=2))
        assert tlb.invalidate_range(3 * PAGE_SIZE, PAGE_SIZE, asid=1) == 1
        assert tlb.lookup(3 * PAGE_SIZE, asid=2) is not None

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2048),  # vpn
                st.sampled_from([PAGE_SIZE, HUGE_PAGE_2M, HUGE_PAGE_1G]),
                st.integers(min_value=0, max_value=2),  # asid
            ),
            max_size=40,
        ),
        st.integers(min_value=0, max_value=1024),  # range start page
        st.integers(min_value=1, max_value=4096),  # range length pages
        st.integers(min_value=0, max_value=2),  # invalidated asid
    )
    def test_invalidate_range_matches_brute_force(
        self, entries, start_page, npages, asid
    ):
        """The set-indexed probe drops exactly the overlapping entries.

        Oracle: brute-force overlap filter over every inserted entry —
        the semantics the set-batched implementation must preserve.
        Lengths up to 4096 pages exercise both the sparse-VPN probe and
        the span >= nsets degenerate case (128 sets for 4 KiB pages).
        """
        tlb = Tlb()
        resident = {}
        for vpn, size, entry_asid in entries:
            e = entry(vpn=vpn, size=size, asid=entry_asid)
            evicted = tlb.insert(e)
            resident[(entry_asid, size, vpn)] = e
            if evicted is not None:
                resident.pop(
                    (evicted.asid, evicted.page_size, evicted.vpn), None
                )
        vaddr = start_page * PAGE_SIZE
        length = npages * PAGE_SIZE
        end = vaddr + length
        expected_dropped = {
            key
            for key, e in resident.items()
            if e.asid == asid and e.vaddr < end and e.vaddr + e.page_size > vaddr
        }

        assert tlb.invalidate_range(vaddr, length, asid=asid) == len(
            expected_dropped
        )
        for key, e in resident.items():
            hit = tlb.lookup(e.vaddr, asid=e.asid)
            if key in expected_dropped:
                assert hit is None or hit.page_size != e.page_size
            else:
                assert hit is not None

    def test_flush_asid_only(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=1, asid=1))
        tlb.insert(entry(vpn=1, asid=2))
        assert tlb.flush_asid(1) == 1
        assert tlb.lookup(PAGE_SIZE, asid=2) is not None

    def test_flush_all(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=1))
        tlb.insert(entry(vpn=2, size=HUGE_PAGE_2M, pfn=3))
        assert tlb.flush_all() == 2
        assert tlb.resident_count() == 0


class TestResidency:
    def test_resident_count_by_size(self):
        tlb = Tlb()
        tlb.insert(entry(vpn=1))
        tlb.insert(entry(vpn=2))
        tlb.insert(entry(vpn=0, size=HUGE_PAGE_2M))
        assert tlb.resident_count(PAGE_SIZE) == 2
        assert tlb.resident_count(HUGE_PAGE_2M) == 1
        assert tlb.resident_count() == 3

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
    def test_lookup_always_finds_most_recent_insert(self, vpns):
        tlb = Tlb()
        for vpn in vpns:
            tlb.insert(entry(vpn=vpn, pfn=vpn + 1))
            hit = tlb.lookup(vpn * PAGE_SIZE)
            assert hit is not None and hit.pfn == vpn + 1
