"""The paper's claims, quoted and executed.

An index from sentences in *Towards O(1) Memory* to behaviour of this
implementation.  Each test quotes the claim it checks; together they are
the compliance sheet for the reproduction.  (Figure-level quantitative
claims live in tests/test_integration_figures.py and the benches.)
"""

import pytest

from repro.core.fom import (
    FileOnlyMemory,
    FileReclaimer,
    MapStrategy,
    PersistenceManager,
    launch_fom_process,
)
from repro.core.rangetrans import RangeMemory
from repro.fs.utilization import UtilizationModel
from repro.hw.iommu import Iommu
from repro.kernel import Kernel, MachineConfig
from repro.mem.frame_meta import PageFlags
from repro.paging.walker import PageWalker
from repro.units import GIB, KIB, MIB, PAGE_SIZE


@pytest.fixture
def machine():
    return Kernel(
        MachineConfig(
            dram_bytes=512 * MIB, nvm_bytes=2 * GIB,
            range_hardware=True, pmfs_extent_align_frames=512,
        )
    )


class TestSection2Motivation:
    def test_linux_page_structure_has_25_flags(self):
        """'the Linux PAGE structure has 25 separate flags to track
        memory status'"""
        assert PageFlags.flag_count() == 25

    def test_5_level_virtualized_needs_35_references(self, machine):
        """'5-level address translation ... requires up to 35 memory
        references in virtualized systems'"""
        walker = PageWalker(
            machine.cache, machine.clock, machine.costs, machine.counters,
            virtualized=True,
        )
        assert walker.references_per_walk(5) == 35

    def test_mean_and_median_utilization_below_50(self):
        """'the mean and median file system utilization was below 50%'"""
        stats = UtilizationModel(seed=2017).fleet_stats(machines=400)
        assert stats.mean_utilization < 0.50
        assert stats.median_utilization < 0.50


class TestSection31FileOnlyMemory:
    def test_permission_is_whole_file_not_per_block(self, machine):
        """'permission is granted for the whole file and not individual
        blocks'"""
        inode = machine.pmfs.create("/f", size=2 * MIB)
        assert isinstance(inode.mode, int)  # one mode word per file
        assert not hasattr(inode, "block_permissions")

    def test_unused_blocks_are_one_bit_each(self, machine):
        """'unused blocks are represented by a single bit in a bitmap'"""
        bitmap = machine.nvm_allocator._bitmap
        assert bitmap.size == machine.nvm_region.frame_count

    def test_thread_stack_is_one_extent_file(self, machine):
        """'Creating a thread stack becomes allocating a file with a
        single extent containing a region of memory'"""
        fom = FileOnlyMemory(machine)
        fp = launch_fom_process(
            fom, "t", code_bytes=1 * MIB, heap_bytes=1 * MIB,
            stack_bytes=1 * MIB,
        )
        stack = fp.create_thread_stack(512 * KIB)
        assert machine.pmfs.extent_count(stack.inode) == 1

    def test_memory_reclaimed_in_units_of_files(self, machine):
        """'memory is only reclaimed in the unit of a file'"""
        fom = FileOnlyMemory(machine)
        process = machine.spawn("p")
        region = fom.allocate(process, 4 * MIB)
        with machine.measure() as m:
            fom.release(region)
        assert m.counter_delta.get("reclaim_scanned") is None
        assert m.counter_delta.get("extent_free") == 1

    def test_no_dirty_tracking_for_file_memory(self, machine):
        """'there is no need to track the clean/dirty/referenced status
        of most memory'"""
        fom = FileOnlyMemory(machine)
        process = machine.spawn("p")
        region = fom.allocate(process, 2 * MIB)
        with machine.measure() as m:
            machine.access_range(process, region.vaddr, 2 * MIB, write=True)
        assert m.counter_delta.get("frame_meta_touch") is None

    def test_discardable_files_reclaim_like_transcendent_memory(self, machine):
        """'the OS can reclaim the memory by deleting non-critical
        files'"""
        fom = FileOnlyMemory(machine)
        reclaimer = FileReclaimer(fom)
        process = machine.spawn("p")
        region = fom.allocate(process, 4 * MIB, name="/c", discardable=True)
        reclaimer.register(region)
        freed, deleted = reclaimer.reclaim_bytes(1 * MIB)
        assert deleted == 1 and freed >= 4 * MIB

    def test_volatile_or_persistent_marked_at_any_time(self, machine):
        """'files that can be marked at any time as volatile or
        persistent'"""
        fom = FileOnlyMemory(machine)
        pm = PersistenceManager(fom)
        region = fom.allocate(machine.spawn("p"), 1 * MIB, name="/m")
        pm.mark_persistent(region)
        pm.mark_volatile(region)
        pm.mark_persistent(region)
        assert region.inode.persistent

    def test_mapping_becomes_a_single_pointer_write(self, machine):
        """'mapping becomes changing a single pointer in a page table to
        refer to existing page tables'"""
        fom = FileOnlyMemory(machine)
        inode = machine.pmfs.create("/pm", size=2 * MIB)
        fom.ptcache.premap(inode)
        process = machine.spawn("p")
        with machine.measure() as m:
            fom.ptcache.attach(process.space, inode)
        assert m.counter_delta.get("pte_write") == 1

    def test_data_implicitly_pinned_for_devices(self, machine):
        """'data is implicitly pinned in memory, as pages are never
        reclaimed or relocated until the file is explicitly unmapped'"""
        fom = FileOnlyMemory(machine)
        process = machine.spawn("p")
        region = fom.allocate(process, 4 * MIB)
        iommu = Iommu(machine.clock, machine.costs, machine.counters)
        backing = region.inode.fs.backing_for(region.inode)
        runs = [
            (pfn * PAGE_SIZE, run * PAGE_SIZE)
            for _, pfn, run in backing.frame_runs(0, 1024)
        ]
        with machine.measure() as m:
            iommu.map_implicit(runs)
        assert m.counter_delta.get("dma_page_pinned") is None
        assert m.counter_delta.get("dma_extent_mapped") == 1

    def test_applications_can_swap_themselves(self, machine):
        """'applications that need swapping could implement it themselves
        using techniques such as userfaultfd'"""
        from repro.vm.userfault import UserFaultRegion

        process = machine.spawn("p")
        region = UserFaultRegion(
            machine, process, 4 * PAGE_SIZE, handler=lambda page: b"mine"
        )
        machine.access(process, region.vaddr)
        assert region.delivered == 1
        assert machine.swap is None  # the kernel did no swapping


class TestSection42Pbm:
    def test_pbm_addresses_common_to_all_processes(self, machine):
        """'those addresses would be guaranteed to be common to all
        processes'"""
        from repro.core.pbm import PbmManager

        pbm = PbmManager(machine)
        inode = machine.pmfs.create("/shared", size=2 * MIB)
        vaddrs = {
            pbm.map_file(machine.spawn(f"p{i}"), inode).vaddr
            for i in range(3)
        }
        assert len(vaddrs) == 1

    def test_two_page_table_sets_for_permissions(self, machine):
        """'It may be necessary to maintain two sets of page tables to
        allow different permissions (read vs read/write)'"""
        from repro.core.pbm import PbmManager
        from repro.vm.vma import Protection

        pbm = PbmManager(machine)
        inode = machine.pmfs.create("/dual", size=2 * MIB)
        pbm.map_file(machine.spawn("rw"), inode, prot=Protection.rw())
        pbm.map_file(machine.spawn("ro"), inode, prot=Protection.READ)
        assert pbm.subtrees.cached_extents == 2


class TestSection43RangeTranslations:
    def test_one_range_entry_per_extent(self, machine):
        """'memory managed as extents in a file can be efficiently mapped
        by assigning one virtual memory range to each extent'"""
        rm = RangeMemory(machine)
        inode = machine.pmfs.create("/r", size=64 * MIB)
        mapping = rm.map_file(machine.spawn("p"), inode)
        assert mapping.entry_count == machine.pmfs.extent_count(inode) == 1

    def test_unmap_is_single_operation_plus_shootdown(self, machine):
        """'unmapping a file can be a single operation to update the
        range table and shoot down the entry in the TLB'"""
        rm = RangeMemory(machine)
        inode = machine.pmfs.create("/u", size=64 * MIB)
        process = machine.spawn("p")
        mapping = rm.map_file(process, inode)
        machine.access(process, mapping.vaddr)
        with machine.measure() as m:
            rm.unmap(mapping)
        assert m.counter_delta.get("rte_remove") == 1
        assert machine.rtlb.resident_count() == 0
