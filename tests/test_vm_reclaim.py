"""Reclaim baselines: clock and 2Q scanning, eviction, swap integration."""

import pytest

from repro.kernel import Kernel, MachineConfig
from repro.mem.frame_meta import PageFlags
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.vm.reclaimd import ClockReclaimer, TwoQueueReclaimer


@pytest.fixture
def machine():
    kernel = Kernel(
        MachineConfig(dram_bytes=256 * MIB, nvm_bytes=0, swap_pages=4096)
    )
    process = kernel.spawn("t", track_lru=True)
    return kernel, process, kernel.syscalls(process)


def fault_in(kernel, process, sys, pages):
    va = sys.mmap(pages * PAGE_SIZE)
    kernel.access_range(process, va, pages * PAGE_SIZE)
    return va


class TestLruRegistration:
    def test_faulted_pages_tracked(self, machine):
        kernel, process, sys = machine
        fault_in(kernel, process, sys, 8)
        assert kernel.lru.resident_count == 8
        assert len(kernel.lru.inactive) == 8

    def test_untracked_space_not_registered(self, machine):
        kernel, _, _ = machine
        other = kernel.spawn("untracked")  # track_lru=False
        sys = kernel.syscalls(other)
        va = sys.mmap(PAGE_SIZE)
        kernel.access(other, va)
        assert kernel.lru.resident_count == 0


class TestClockReclaimer:
    def test_reclaims_requested_pages(self, machine):
        kernel, process, sys = machine
        fault_in(kernel, process, sys, 16)
        reclaimer = ClockReclaimer(kernel.lru, kernel.frame_table, kernel.counters)
        # Faulted pages start REFERENCED; one scan pass clears, second evicts.
        assert reclaimer.reclaim(4) == 4
        assert process.space.resident_pages() == 12

    def test_referenced_pages_get_second_chance(self, machine):
        kernel, process, sys = machine
        fault_in(kernel, process, sys, 8)
        reclaimer = ClockReclaimer(kernel.lru, kernel.frame_table, kernel.counters)
        before = kernel.counters.get("reclaim_scanned")
        reclaimer.reclaim(1)
        scanned = kernel.counters.get("reclaim_scanned") - before
        # Must have scanned more than it evicted (second chances).
        assert scanned > 1

    def test_scanning_cost_linear_in_resident(self, machine):
        kernel, process, sys = machine
        fault_in(kernel, process, sys, 64)
        reclaimer = ClockReclaimer(kernel.lru, kernel.frame_table, kernel.counters)
        before_ns = kernel.clock.now
        before_scanned = kernel.counters.get("reclaim_scanned")
        reclaimer.reclaim(32)
        assert kernel.counters.get("reclaim_scanned") - before_scanned >= 64
        assert kernel.clock.now > before_ns

    def test_evicted_page_faults_back_from_swap(self, machine):
        kernel, process, sys = machine
        va = fault_in(kernel, process, sys, 4)
        reclaimer = ClockReclaimer(kernel.lru, kernel.frame_table, kernel.counters)
        reclaimer.reclaim(4)
        assert kernel.counters.get("swap_out") == 4
        kernel.access(process, va)  # major fault
        assert kernel.counters.get("swap_in") == 1

    def test_empty_lists_reclaim_zero(self, machine):
        kernel, _, _ = machine
        reclaimer = ClockReclaimer(kernel.lru, kernel.frame_table, kernel.counters)
        assert reclaimer.reclaim(10) == 0


class TestTwoQueueReclaimer:
    def test_reclaims(self, machine):
        kernel, process, sys = machine
        fault_in(kernel, process, sys, 16)
        reclaimer = TwoQueueReclaimer(
            kernel.lru, kernel.frame_table, kernel.counters
        )
        assert reclaimer.reclaim(4) == 4

    def test_protected_fraction_bounds_promotion(self, machine):
        kernel, process, sys = machine
        fault_in(kernel, process, sys, 16)
        reclaimer = TwoQueueReclaimer(
            kernel.lru, kernel.frame_table, kernel.counters,
            protected_fraction=0.25,
        )
        reclaimer.reclaim(8)
        assert len(kernel.lru.active) <= 4

    def test_bad_fraction_rejected(self, machine):
        kernel, _, _ = machine
        with pytest.raises(ValueError):
            TwoQueueReclaimer(
                kernel.lru, kernel.frame_table, kernel.counters,
                protected_fraction=1.5,
            )


class TestSwapDevice:
    def test_write_read_roundtrip(self, machine):
        kernel, _, _ = machine
        slot = kernel.swap.write_page()
        assert kernel.swap.used_slots == 1
        kernel.swap.read_page(slot)
        assert kernel.swap.used_slots == 0

    def test_costs_charged(self, machine):
        kernel, _, _ = machine
        before = kernel.clock.now
        slot = kernel.swap.write_page()
        assert kernel.clock.now - before == kernel.costs.swap_write_page_ns
        before = kernel.clock.now
        kernel.swap.read_page(slot)
        assert kernel.clock.now - before == kernel.costs.swap_read_page_ns

    def test_slot_reuse(self, machine):
        kernel, _, _ = machine
        slot = kernel.swap.write_page()
        kernel.swap.read_page(slot)
        assert kernel.swap.write_page() == slot

    def test_bad_read_rejected(self, machine):
        kernel, _, _ = machine
        with pytest.raises(ValueError):
            kernel.swap.read_page(7)

    def test_capacity_exhaustion(self):
        from repro.errors import OutOfMemoryError
        from repro.hw.clock import EventCounters, SimClock
        from repro.hw.costmodel import CostModel
        from repro.vm.swap import SwapDevice

        swap = SwapDevice(2, SimClock(), CostModel(), EventCounters())
        swap.write_page()
        swap.write_page()
        with pytest.raises(OutOfMemoryError):
            swap.write_page()
