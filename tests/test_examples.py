"""Every example must run cleanly — the docs' code never rots."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print their findings"


def test_expected_example_set():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "fom_database_heap",
        "pbm_shared_cache",
        "range_translation_bigdata",
        "crash_recovery",
        "userfault_swapper",
    } <= names
