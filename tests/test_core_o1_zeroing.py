"""Erase strategies: eager (linear) vs pooled vs crypto (O(1))."""

import pytest

from repro.core.o1.zeroing import CryptoErase, EagerZeroing, PooledZeroing
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion
from repro.mem.zeropool import ZeroPool
from repro.units import MIB, PAGE_SIZE


def make_env(region_size=16 * MIB):
    clock = SimClock()
    counters = EventCounters()
    costs = CostModel()
    region = MemoryRegion(start=0, size=region_size, tech=MemoryTechnology.DRAM)
    buddy = BuddyAllocator(region, max_order=12)
    return buddy, clock, costs, counters


class TestEagerZeroing:
    def test_cost_linear_in_frames(self):
        buddy, clock, costs, counters = make_env()
        strategy = EagerZeroing(buddy, clock, costs, counters)
        strategy.take_frames(1)
        one = clock.now
        strategy.take_frames(64)
        assert clock.now - one == 64 * one  # 64x the single-frame cost...

    def test_frames_returned(self):
        buddy, clock, costs, counters = make_env()
        strategy = EagerZeroing(buddy, clock, costs, counters)
        before = buddy.free_frames
        pfns = strategy.take_frames(8)
        strategy.return_frames(pfns)
        assert buddy.free_frames == before

    def test_no_background_work(self):
        buddy, clock, costs, counters = make_env()
        strategy = EagerZeroing(buddy, clock, costs, counters)
        strategy.take_frames(16)
        assert strategy.background_ns() == 0


class TestPooledZeroing:
    def test_foreground_constant_while_stocked(self):
        buddy, clock, costs, counters = make_env()
        pool = ZeroPool(buddy, 256, clock=clock, costs=costs, counters=counters)
        strategy = PooledZeroing(pool)
        strategy.replenish()
        start = clock.now
        strategy.take_frames(1)
        one = clock.now - start
        start = clock.now
        strategy.take_frames(128)
        many = clock.now - start
        # No per-frame zeroing in the foreground: both near zero.
        assert one == 0 and many == 0

    def test_background_ledger_accumulates(self):
        buddy, clock, costs, counters = make_env()
        pool = ZeroPool(buddy, 32, clock=clock, costs=costs, counters=counters)
        strategy = PooledZeroing(pool)
        strategy.replenish()
        assert strategy.background_ns() == 32 * costs.zero_page_ns(PAGE_SIZE)

    def test_exhausted_pool_degrades_to_foreground(self):
        buddy, clock, costs, counters = make_env()
        pool = ZeroPool(buddy, 2, clock=clock, costs=costs, counters=counters)
        strategy = PooledZeroing(pool)
        strategy.replenish()
        start = clock.now
        strategy.take_frames(4)  # 2 pooled + 2 foreground
        assert clock.now - start == 2 * costs.zero_page_ns(PAGE_SIZE)


class TestCryptoErase:
    def test_constant_cost_regardless_of_size(self):
        buddy, clock, costs, counters = make_env()
        strategy = CryptoErase(buddy, clock, costs, counters)
        start = clock.now
        small = strategy.take_frames(1)
        small_cost = clock.now - start
        start = clock.now
        big = strategy.take_frames(512)
        big_cost = clock.now - start
        assert small_cost == big_cost == CryptoErase.KEY_OP_NS

    def test_return_destroys_key(self):
        buddy, clock, costs, counters = make_env()
        strategy = CryptoErase(buddy, clock, costs, counters)
        pfns = strategy.take_frames(8)
        assert strategy.live_keys == 1
        strategy.return_frames(pfns)
        assert strategy.live_keys == 0
        assert counters.get("crypto_key_destroy") == 1

    def test_return_gives_frames_back(self):
        buddy, clock, costs, counters = make_env()
        strategy = CryptoErase(buddy, clock, costs, counters)
        before = buddy.free_frames
        pfns = strategy.take_frames(16)
        strategy.return_frames(pfns)
        assert buddy.free_frames == before

    def test_empty_batch_tolerated(self):
        buddy, clock, costs, counters = make_env()
        strategy = CryptoErase(buddy, clock, costs, counters)
        strategy.return_frames([])
        assert strategy.live_keys == 0
