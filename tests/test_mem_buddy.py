"""Buddy allocator: splitting, coalescing, accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfMemoryError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion
from repro.units import MIB, PAGE_SIZE


def make_buddy(size=4 * MIB, max_order=10, start=0):
    region = MemoryRegion(start=start, size=size, tech=MemoryTechnology.DRAM)
    return BuddyAllocator(region, max_order=max_order)


class TestAllocation:
    def test_simple_alloc_free(self):
        buddy = make_buddy()
        pfn = buddy.alloc(0)
        assert buddy.is_allocated(pfn)
        assert buddy.free_frames == 4 * MIB // PAGE_SIZE - 1
        buddy.free(pfn)
        assert buddy.free_frames == 4 * MIB // PAGE_SIZE

    def test_higher_order_alloc_is_aligned(self):
        buddy = make_buddy()
        pfn = buddy.alloc(4)  # 16 frames
        assert pfn % 16 == 0

    def test_nonzero_region_start_alignment(self):
        buddy = make_buddy(start=3 * MIB)
        pfn = buddy.alloc(4)
        first = 3 * MIB // PAGE_SIZE
        assert (pfn - first) % 16 == 0

    def test_alloc_pages_rounds_to_power_of_two(self):
        buddy = make_buddy()
        before = buddy.free_frames
        buddy.alloc_pages(5)  # rounds up to 8
        assert before - buddy.free_frames == 8

    def test_order_for_pages(self):
        assert BuddyAllocator.order_for_pages(1) == 0
        assert BuddyAllocator.order_for_pages(2) == 1
        assert BuddyAllocator.order_for_pages(3) == 2
        assert BuddyAllocator.order_for_pages(512) == 9
        with pytest.raises(ValueError):
            BuddyAllocator.order_for_pages(0)

    def test_exhaustion_raises(self):
        buddy = make_buddy(size=64 * PAGE_SIZE, max_order=6)
        buddy.alloc(6)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(0)

    def test_out_of_range_order_rejected(self):
        buddy = make_buddy(max_order=5)
        with pytest.raises(ValueError):
            buddy.alloc(6)
        with pytest.raises(ValueError):
            buddy.alloc(-1)

    def test_distinct_blocks_never_overlap(self):
        buddy = make_buddy()
        seen = set()
        for _ in range(16):
            pfn = buddy.alloc(2)  # 4-frame blocks
            block = set(range(pfn, pfn + 4))
            assert not block & seen
            seen |= block


class TestCoalescing:
    def test_free_merges_back_to_whole_region(self):
        buddy = make_buddy(size=16 * PAGE_SIZE, max_order=4)
        pfns = [buddy.alloc(0) for _ in range(16)]
        for pfn in pfns:
            buddy.free(pfn)
        assert buddy.largest_free_order() == 4

    def test_partial_free_keeps_fragmentation(self):
        buddy = make_buddy(size=16 * PAGE_SIZE, max_order=4)
        pfns = [buddy.alloc(0) for _ in range(16)]
        for pfn in pfns[::2]:
            buddy.free(pfn)
        assert buddy.largest_free_order() == 0
        assert buddy.fragmentation_index() > 0.8

    def test_double_free_rejected(self):
        buddy = make_buddy()
        pfn = buddy.alloc(0)
        buddy.free(pfn)
        with pytest.raises(ValueError):
            buddy.free(pfn)

    def test_free_unallocated_rejected(self):
        buddy = make_buddy()
        with pytest.raises(ValueError):
            buddy.free(12345)


class TestAccounting:
    def test_charges_costs(self):
        clock = SimClock()
        counters = EventCounters()
        region = MemoryRegion(start=0, size=MIB, tech=MemoryTechnology.DRAM)
        buddy = BuddyAllocator(
            region, clock=clock, costs=CostModel(), counters=counters
        )
        buddy.alloc(0)
        assert clock.now >= CostModel().frame_alloc_ns
        assert counters.get("buddy_alloc") == 1

    def test_free_blocks_by_order(self):
        buddy = make_buddy(size=16 * PAGE_SIZE, max_order=4)
        info = buddy.free_blocks_by_order()
        assert info == {4: 1}
        buddy.alloc(0)
        info = buddy.free_blocks_by_order()
        assert sum(count * (1 << order) for order, count in info.items()) == 15

    def test_fragmentation_index_bounds(self):
        buddy = make_buddy(size=16 * PAGE_SIZE, max_order=4)
        assert buddy.fragmentation_index() == 0.0

    @given(st.data())
    @settings(max_examples=50)
    def test_conservation_invariant(self, data):
        """free_frames + live frames == region frames, always."""
        buddy = make_buddy(size=64 * PAGE_SIZE, max_order=6)
        total = 64
        live = {}
        for _ in range(data.draw(st.integers(1, 60))):
            if live and data.draw(st.booleans()):
                pfn = data.draw(st.sampled_from(sorted(live)))
                buddy.free(pfn)
                del live[pfn]
            else:
                order = data.draw(st.integers(0, 3))
                try:
                    pfn = buddy.alloc(order)
                except OutOfMemoryError:
                    continue
                live[pfn] = order
            live_frames = sum(1 << order for order in live.values())
            assert buddy.free_frames + live_frames == total


class TestFreeMany:
    def test_batch_free_returns_every_block(self):
        buddy = make_buddy()
        pfns = [buddy.alloc(0) for _ in range(8)]
        buddy.free_many(pfns)
        assert buddy.free_frames == 4 * MIB // PAGE_SIZE
        for pfn in pfns:
            assert not buddy.is_allocated(pfn)

    def test_batch_free_charges_once(self):
        clock = SimClock()
        counters = EventCounters()
        region = MemoryRegion(start=0, size=MIB, tech=MemoryTechnology.DRAM)
        buddy = BuddyAllocator(
            region, clock=clock, costs=CostModel(), counters=counters
        )
        pfns = [buddy.alloc(0) for _ in range(16)]
        before = clock.now
        buddy.free_many(pfns)
        # One charged frame_free_ns for the whole batch; per-block work
        # and merges ride along at 0 ns (the O(1) crypto-erase contract).
        assert clock.now - before == CostModel().frame_free_ns

    def test_empty_batch_is_noop(self):
        clock = SimClock()
        region = MemoryRegion(start=0, size=MIB, tech=MemoryTechnology.DRAM)
        buddy = BuddyAllocator(region, clock=clock, costs=CostModel())
        buddy.free_many([])
        assert clock.now == 0

    def test_batch_free_still_rejects_bad_pfn(self):
        buddy = make_buddy()
        pfn = buddy.alloc(0)
        with pytest.raises(ValueError):
            buddy.free_many([pfn, pfn + 1])
