"""Chrome counter tracks (`ph: "C"`) for MetricsRegistry histograms."""

from __future__ import annotations

import json

from repro.kernel import Kernel, MachineConfig
from repro.obs.export import (
    chrome_trace,
    counter_track_events,
    export_tracer,
    load_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.units import MIB, PAGE_SIZE
from repro.vm.vma import MapFlags


def traced_kernel() -> Kernel:
    kernel = Kernel(MachineConfig(dram_bytes=64 * MIB))
    kernel.tracer.enable()
    process = kernel.spawn("demo")
    sys = kernel.syscalls(process)
    va = sys.mmap(16 * PAGE_SIZE, flags=MapFlags.PRIVATE)
    for index in range(16):
        kernel.access(process, va + index * PAGE_SIZE)
    return kernel


class TestCounterTrackEvents:
    def test_one_track_per_histogram_with_percentile_series(self):
        metrics = MetricsRegistry()
        for value in (1, 10, 100, 1000):
            metrics.observe("walk_ns", value)
        records = counter_track_events(metrics, end_ts_ns=5_000)
        names = {record["name"] for record in records}
        assert names == {"hist:walk_ns"}
        for record in records:
            assert record["ph"] == "C"
            hist = metrics.histogram("walk_ns")
            assert record["args"] == {
                "p50": hist.p50, "p95": hist.p95, "p99": hist.p99,
            }
        # Two samples (start + end) so Perfetto draws a band, not a dot.
        assert sorted(record["ts"] for record in records) == [0.0, 5.0]

    def test_empty_histograms_are_skipped(self):
        metrics = MetricsRegistry()
        metrics.histogram("never_observed")
        assert counter_track_events(metrics, end_ts_ns=100) == []

    def test_zero_length_trace_emits_single_sample(self):
        metrics = MetricsRegistry()
        metrics.observe("x", 7)
        records = counter_track_events(metrics, end_ts_ns=0)
        assert [record["ts"] for record in records] == [0.0]


class TestChromeTraceIntegration:
    def test_chrome_trace_appends_counter_records(self):
        kernel = traced_kernel()
        document = chrome_trace(
            kernel.tracer.events(),
            kernel.tracer.process_names,
            metrics=kernel.counters,
        )
        counters = [
            record for record in document["traceEvents"]
            if record["ph"] == "C"
        ]
        assert counters
        assert all(record["name"].startswith("hist:") for record in counters)
        # Tracks land at the trace's end timestamp, not past it.
        span_ts = [
            record["ts"] for record in document["traceEvents"]
            if record["ph"] in ("B", "E")
        ]
        assert max(record["ts"] for record in counters) <= max(span_ts)

    def test_no_metrics_no_counter_records(self):
        kernel = traced_kernel()
        document = chrome_trace(kernel.tracer.events())
        assert not [
            record for record in document["traceEvents"]
            if record["ph"] == "C"
        ]

    def test_export_tracer_includes_tracks_and_round_trips(self, tmp_path):
        kernel = traced_kernel()
        path = tmp_path / "trace.json"
        export_tracer(str(path), kernel.tracer)
        document = json.loads(path.read_text())
        counters = [
            record for record in document["traceEvents"]
            if record["ph"] == "C"
        ]
        assert counters
        histograms = {
            f"hist:{name}"
            for name, hist in kernel.counters.histograms().items()
            if hist.count
        }
        assert {record["name"] for record in counters} == histograms
        # load_chrome_trace skips counter records: span/instant parsing
        # is unchanged by the new track type.
        events = load_chrome_trace(str(path))
        assert len(events) == len(document["traceEvents"]) - len(
            counters
        ) - sum(
            1 for record in document["traceEvents"] if record["ph"] == "M"
        )
