"""Log-structured store: appends, overwrites, cleaning, O(1) segment death."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fom import FileOnlyMemory
from repro.errors import MappingError
from repro.kernel import Kernel, MachineConfig
from repro.runtime import LogStructuredStore
from repro.units import GIB, KIB, MIB


from repro.core.o1.policy import ExtentPolicy
from repro.units import PAGE_SIZE


def exact_fom(kernel):
    """FOM whose policy does not round sizes up (exact segment sizing)."""
    policy = ExtentPolicy(
        min_extent_bytes=PAGE_SIZE, align_to_page_structures=False
    )
    return FileOnlyMemory(kernel, policy=policy)


@pytest.fixture
def store(aligned_kernel):
    fom = exact_fom(aligned_kernel)
    process = aligned_kernel.spawn("log")
    return (
        LogStructuredStore(fom, process, segment_bytes=256 * KIB),
        aligned_kernel,
    )


class TestPutGet:
    def test_roundtrip(self, store):
        log, _ = store
        log.put(1, b"hello")
        log.put(2, b"world")
        assert log.get(1) == b"hello"
        assert log.get(2) == b"world"
        assert len(log) == 2

    def test_overwrite_returns_latest(self, store):
        log, _ = store
        log.put(1, b"v1")
        log.put(1, b"v2-longer")
        assert log.get(1) == b"v2-longer"
        assert len(log) == 1

    def test_missing_key_raises(self, store):
        log, _ = store
        with pytest.raises(KeyError):
            log.get(404)

    def test_delete(self, store):
        log, _ = store
        log.put(1, b"x")
        log.delete(1)
        assert 1 not in log
        with pytest.raises(KeyError):
            log.delete(1)

    def test_empty_value_rejected(self, store):
        log, _ = store
        with pytest.raises(MappingError):
            log.put(1, b"")

    def test_oversized_value_rejected(self, store):
        log, _ = store
        with pytest.raises(MappingError):
            log.put(1, b"z" * (300 * KIB))

    def test_appends_fill_segments(self, store):
        log, _ = store
        for key in range(100):
            log.put(key, b"x" * 4000)
        assert log.stats()["segments"] >= 2


class TestCleaning:
    def fill_and_kill(self, log, records=120, value_bytes=4000):
        for key in range(records):
            log.put(key, bytes([key % 251]) * value_bytes)
        for key in range(0, records, 2):
            log.delete(key)

    def test_clean_reclaims_segments(self, store):
        log, _ = store
        self.fill_and_kill(log)
        capacity_before = log.stats()["capacity_bytes"]
        freed = log.clean(max_segments=8)
        assert freed > 0
        # Freed segments' files are gone; the survivors' live data moved
        # into (at most one) new head segment, so net capacity shrinks
        # or stays while dead space drops.
        assert log.stats()["capacity_bytes"] <= capacity_before

    def test_clean_preserves_live_data(self, store):
        log, _ = store
        self.fill_and_kill(log)
        survivors = {key: log.get(key) for key in range(1, 120, 2)}
        log.clean(max_segments=8)
        for key, value in survivors.items():
            assert log.get(key) == value

    def test_clean_reduces_dead_bytes(self, store):
        log, _ = store
        self.fill_and_kill(log)
        before = log.stats()["dead_bytes"]
        log.clean(max_segments=8)
        assert log.stats()["dead_bytes"] < before

    def test_segment_reclamation_is_file_deletion(self, store):
        log, kernel = store
        self.fill_and_kill(log)
        with kernel.measure() as m:
            freed = log.clean(max_segments=8)
        # Every freed segment cost one fom release (unlink), and no
        # reclaim scanning happened anywhere.
        assert m.counter_delta.get("fom_release") == freed
        assert m.counter_delta.get("reclaim_scanned") is None

    def test_cleaning_accounting(self, store):
        log, _ = store
        self.fill_and_kill(log)
        log.clean(max_segments=8)
        stats = log.stats()
        assert stats["segments_cleaned"] > 0
        assert stats["bytes_copied_cleaning"] > 0

    def test_bad_clean_threshold_rejected(self, aligned_kernel):
        fom = FileOnlyMemory(aligned_kernel)
        process = aligned_kernel.spawn("p")
        with pytest.raises(ValueError):
            LogStructuredStore(fom, process, clean_below=1.5)


class TestDestroyAndProperties:
    def test_destroy_releases_segments(self, store):
        log, kernel = store
        for key in range(50):
            log.put(key, b"x" * 4000)
        free_before = kernel.nvm_allocator.free_blocks
        log.destroy()
        assert kernel.nvm_allocator.free_blocks >= free_before
        assert log.stats()["segments"] == 0

    @given(st.lists(
        st.tuples(st.integers(0, 20), st.binary(min_size=1, max_size=600)),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=15)
    def test_log_matches_dict_semantics(self, operations):
        """Property: after arbitrary puts, the log agrees with a dict."""
        kernel = Kernel(
            MachineConfig(
                dram_bytes=256 * MIB, nvm_bytes=2 * GIB,
                pmfs_extent_align_frames=512,
            )
        )
        fom = exact_fom(kernel)
        log = LogStructuredStore(
            fom, kernel.spawn("p"), segment_bytes=64 * KIB
        )
        model = {}
        for key, value in operations:
            log.put(key, value)
            model[key] = value
        log.clean(max_segments=16)
        for key, value in model.items():
            assert log.get(key) == value
        assert len(log) == len(model)
