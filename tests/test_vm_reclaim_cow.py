"""Reclaim vs fork-shared COW windows: eviction must not strand siblings.

Regression tests for the window where kswapd-style eviction raced
fork's page-table subtree sharing: evicting a page whose translation
path is COW-shared would unmap it from one table while the sibling kept
a live PTE to the frame swap-out was about to free.  Pinned pages are
now refused (``vm_evict_pinned``) and kept on the LRU until the share
is broken.
"""

from __future__ import annotations

import pytest

from repro.kernel import Kernel, MachineConfig
from repro.sanitize import SanitizerSuite
from repro.units import GIB, MIB, PAGE_SIZE
from repro.vm.reclaimd import ClockReclaimer
from repro.vm.vma import MapFlags

PAGES = 16


@pytest.fixture
def swap_kernel() -> Kernel:
    return Kernel(
        MachineConfig(dram_bytes=64 * MIB, nvm_bytes=1 * GIB, swap_pages=1024)
    )


def _faulted_parent(kernel):
    parent = kernel.spawn("parent", track_lru=True)
    va = kernel.syscalls(parent).mmap(PAGES * PAGE_SIZE, flags=MapFlags.PRIVATE)
    for i in range(PAGES):
        kernel.access(parent, va + i * PAGE_SIZE, write=True)
    return parent, va


def _reclaimer(kernel) -> ClockReclaimer:
    return ClockReclaimer(kernel.lru, kernel.frame_table, kernel.counters)


class TestPinnedWindows:
    def test_fork_shared_pages_refuse_eviction(self, swap_kernel):
        kernel = swap_kernel
        parent, _va = _faulted_parent(kernel)
        kernel.fork(parent)

        resident_before = kernel.lru.resident_count
        reclaimed = _reclaimer(kernel).reclaim(PAGES)

        assert reclaimed == 0
        assert kernel.counters.get("vm_evict_pinned") > 0
        assert kernel.counters.get("swap_out") == 0
        # Refused pages go back on the active list, not off both lists:
        # once the share breaks they must still be findable.
        assert kernel.lru.resident_count == resident_before

    def test_sibling_survives_reclaim_attempt(self, swap_kernel):
        """TransSan-armed: after a refused pass both spaces stay coherent."""
        kernel = swap_kernel
        kernel.arm_sanitizers(SanitizerSuite())
        parent, va = _faulted_parent(kernel)
        child = kernel.fork(parent)

        _reclaimer(kernel).reclaim(PAGES)

        # The bug this guards against: the child translating to a frame
        # eviction had already pushed to swap and freed.  With sharing
        # respected, every access on both sides checks out.
        for i in range(PAGES):
            kernel.access(child, va + i * PAGE_SIZE, write=False)
            kernel.access(parent, va + i * PAGE_SIZE, write=False)
        assert kernel.counters.get("sanitize_violation") == 0

    def test_broken_share_becomes_evictable(self, swap_kernel):
        kernel = swap_kernel
        kernel.arm_sanitizers(SanitizerSuite())
        parent, va = _faulted_parent(kernel)
        child = kernel.fork(parent)
        assert _reclaimer(kernel).reclaim(PAGES) == 0

        child.exit()
        # Parent writes break the COW protection window by window; the
        # pages are private again and reclaim may unmap them.
        for i in range(PAGES):
            kernel.access(parent, va + i * PAGE_SIZE, write=True)
        reclaimed = _reclaimer(kernel).reclaim(PAGES // 2)
        assert reclaimed == PAGES // 2
        assert parent.space.resident_pages() == PAGES - PAGES // 2

        # The other half of the fix: evicting a COW private copy must
        # NOT push out (and free) the backing's original frame — the
        # copy itself keeps the data, so no writeback happens and the
        # next access re-installs it as a minor fault.
        assert kernel.counters.get("swap_out") == 0
        for i in range(PAGES):
            kernel.access(parent, va + i * PAGE_SIZE, write=False)
        assert parent.space.resident_pages() == PAGES
        assert kernel.counters.get("fault_major") == 0
        assert kernel.counters.get("sanitize_violation") == 0

    def test_never_forked_pages_swap_out_and_back(self, swap_kernel):
        """Control: without COW sharing eviction still writes back."""
        kernel = swap_kernel
        kernel.arm_sanitizers(SanitizerSuite())
        parent, va = _faulted_parent(kernel)
        assert _reclaimer(kernel).reclaim(PAGES // 2) == PAGES // 2
        assert kernel.counters.get("swap_out") == PAGES // 2

        for i in range(PAGES):
            kernel.access(parent, va + i * PAGE_SIZE, write=False)
        assert kernel.counters.get("swap_in") == PAGES // 2
        assert kernel.counters.get("fault_major") == PAGES // 2
        assert kernel.counters.get("sanitize_violation") == 0


class TestTargetedReclaim:
    def test_should_evict_filter_protects_other_pages(self, swap_kernel):
        kernel = swap_kernel
        a, _va_a = _faulted_parent(kernel)
        b = kernel.spawn("other", track_lru=True)
        va_b = kernel.syscalls(b).mmap(PAGES * PAGE_SIZE, flags=MapFlags.PRIVATE)
        for i in range(PAGES):
            kernel.access(b, va_b + i * PAGE_SIZE, write=True)

        reclaimer = _reclaimer(kernel)
        reclaimed = reclaimer.reclaim(
            4, should_evict=lambda entry: entry.space is b.space
        )
        assert reclaimed == 4
        # Only b's pages were taken; a's footprint is untouched.
        assert a.space.resident_pages() == PAGES
        assert b.space.resident_pages() == PAGES - 4

    def test_max_scan_caps_work_when_nothing_qualifies(self, swap_kernel):
        kernel = swap_kernel
        _faulted_parent(kernel)
        scanned_before = kernel.counters.get("reclaim_scanned")
        reclaimed = _reclaimer(kernel).reclaim(
            8, max_scan=4, should_evict=lambda entry: False
        )
        assert reclaimed == 0
        assert kernel.counters.get("reclaim_scanned") - scanned_before <= 4
