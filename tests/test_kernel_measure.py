"""Kernel.measure semantics: nesting, tracing state, crash boundaries."""

from repro.kernel import Kernel, MachineConfig
from repro.obs.trace import EventKind
from repro.units import GIB, KIB, MIB


def fresh_kernel():
    return Kernel(MachineConfig(dram_bytes=512 * MIB, nvm_bytes=2 * GIB))


def touch(kernel, name="w", size=64 * KIB):
    process = kernel.spawn(name)
    sys_calls = kernel.syscalls(process)
    va = sys_calls.mmap(size)
    kernel.access_range(process, va, size)
    return process


class TestNestedMeasure:
    def test_nested_plain_measures_both_report(self):
        kernel = fresh_kernel()
        with kernel.measure() as outer:
            kernel.clock.advance(10)
            with kernel.measure() as inner:
                kernel.clock.advance(30)
            kernel.clock.advance(5)
        assert inner.elapsed_ns == 30
        assert outer.elapsed_ns == 45

    def test_nested_counter_deltas_are_windowed(self):
        kernel = fresh_kernel()
        with kernel.measure() as outer:
            touch(kernel, "a")
            with kernel.measure() as inner:
                touch(kernel, "b")
        assert inner.counter_delta["fault_minor"] > 0
        assert (
            outer.counter_delta["fault_minor"]
            >= 2 * inner.counter_delta["fault_minor"]
        )

    def test_nested_traced_measures(self):
        kernel = fresh_kernel()
        # May already be on (e.g. REPRO_PROFILE arms every kernel with
        # tracing enabled); measure must restore whatever it found.
        was_enabled = kernel.tracer.enabled
        with kernel.measure(trace=True) as outer:
            touch(kernel, "a")
            with kernel.measure(trace=True) as inner:
                touch(kernel, "b")
        # each window's attribution sums to its own elapsed time
        assert sum(inner.attribution.values()) == inner.elapsed_ns
        assert sum(outer.attribution.values()) == outer.elapsed_ns
        assert inner.elapsed_ns < outer.elapsed_ns
        # the inner context must not switch tracing off under the outer
        assert len(outer.events) > len(inner.events)
        # restored to its pre-measure state once the outer exits
        assert kernel.tracer.enabled == was_enabled

    def test_traced_inside_untraced(self):
        kernel = fresh_kernel()
        was_enabled = kernel.tracer.enabled
        with kernel.measure() as outer:
            with kernel.measure(trace=True) as inner:
                touch(kernel)
        assert sum(inner.attribution.values()) == inner.elapsed_ns
        assert outer.elapsed_ns >= inner.elapsed_ns
        if not was_enabled:
            # a plain measure neither enables tracing nor attributes —
            # unless something else (REPRO_PROFILE) had tracing on.
            assert outer.attribution == {}
        assert kernel.tracer.enabled == was_enabled


class TestMeasureAcrossCrash:
    def test_counter_delta_not_negative_across_crash(self):
        kernel = fresh_kernel()
        touch(kernel, "pre")
        with kernel.measure() as m:
            kernel.counters.reset()  # e.g. operator zeroing stats mid-run
            kernel.crash()
            touch(kernel, "post")
        assert m.elapsed_ns > 0
        assert all(v > 0 for v in m.counter_delta.values())

    def test_crash_inside_traced_measure(self):
        kernel = fresh_kernel()
        with kernel.measure(trace=True) as m:
            touch(kernel, "pre")
            kernel.crash()
            touch(kernel, "post")
        crashes = [
            e for e in m.events
            if e.kind is EventKind.INSTANT and e.name == "machine_crash"
        ]
        assert len(crashes) == 1
        assert m.counter_delta["machine_crash"] == 1
        # attribution still balances: crash work is spans like any other
        assert sum(m.attribution.values()) == m.elapsed_ns

    def test_measure_usable_after_crash(self):
        kernel = fresh_kernel()
        kernel.crash()
        with kernel.measure(trace=True) as m:
            touch(kernel, "reborn")
        assert m.elapsed_ns > 0
        assert sum(m.attribution.values()) == m.elapsed_ns


class TestTracedMeasureResults:
    def test_events_bracketed_by_measure_root_span(self):
        kernel = fresh_kernel()
        with kernel.measure(trace=True) as m:
            touch(kernel)
        first, last = m.events[0], m.events[-1]
        assert (first.kind, first.name) == (EventKind.SPAN_BEGIN, "measure")
        assert (last.kind, last.name) == (EventKind.SPAN_END, "measure")

    def test_span_latencies_feed_histograms(self):
        kernel = fresh_kernel()
        with kernel.measure(trace=True):
            touch(kernel)
        hist = kernel.counters.histogram("fault")
        assert hist.count > 0
        assert hist.p50 > 0
