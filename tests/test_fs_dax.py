"""DAX helpers: direct runs and natural alignment."""

import pytest

from repro.fs.dax import (
    direct_map_runs,
    is_dax,
    largest_natural_alignment,
    mmap_setup_extra_ns,
)
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, HUGE_PAGE_2M, KIB, MIB, PAGE_SIZE


class TestDaxPredicates:
    def test_pmfs_is_dax(self, kernel):
        assert is_dax(kernel.pmfs)
        assert not is_dax(kernel.tmpfs)

    def test_dax_disabled_pmfs(self, kernel):
        kernel.pmfs.dax = False
        assert not is_dax(kernel.pmfs)

    def test_setup_extra_cost(self, kernel):
        assert mmap_setup_extra_ns(kernel.pmfs) == kernel.costs.dax_setup_ns
        assert mmap_setup_extra_ns(kernel.tmpfs) == 0


class TestDirectMapRuns:
    def test_single_extent_one_run(self, kernel):
        inode = kernel.pmfs.create("/d", size=1 * MIB)
        runs = list(direct_map_runs(inode))
        assert len(runs) == 1
        assert runs[0][2] == 256

    def test_empty_file_no_runs(self, kernel):
        inode = kernel.pmfs.create("/empty")
        assert list(direct_map_runs(inode)) == []

    def test_non_dax_rejected(self, kernel):
        inode = kernel.tmpfs.create("/t", size=4 * KIB)
        with pytest.raises(ValueError, match="not DAX"):
            list(direct_map_runs(inode))


class TestNaturalAlignment:
    def test_aligned_extents_allow_2m(self):
        kernel = Kernel(
            MachineConfig(
                dram_bytes=256 * MIB, nvm_bytes=1 * GIB,
                pmfs_extent_align_frames=512,
            )
        )
        inode = kernel.pmfs.create("/a", size=2 * MIB)
        assert largest_natural_alignment(inode) == HUGE_PAGE_2M

    def test_unaligned_extent_falls_to_base_pages(self, kernel):
        kernel.nvm_allocator.alloc_extent(3)  # skew subsequent allocations
        inode = kernel.pmfs.create("/u", size=2 * MIB)
        assert largest_natural_alignment(inode) == PAGE_SIZE

    def test_small_file_base_pages(self, kernel):
        inode = kernel.pmfs.create("/s", size=4 * KIB)
        assert largest_natural_alignment(inode) == PAGE_SIZE

    def test_tmpfs_always_base_pages(self, kernel):
        inode = kernel.tmpfs.create("/t", size=2 * MIB)
        assert largest_natural_alignment(inode) == PAGE_SIZE
