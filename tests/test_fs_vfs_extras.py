"""VFS extras: makedirs, deep nesting, FOM path plumbing."""

import pytest

from repro.core.fom import FileOnlyMemory
from repro.errors import FileSystemError
from repro.units import KIB, MIB


class TestMakedirs:
    def test_creates_chain(self, kernel):
        fs = kernel.tmpfs
        fs.makedirs("/a/b/c")
        assert fs.lookup("/a/b/c").kind.value == "dir"
        fs.create("/a/b/c/file")

    def test_idempotent(self, kernel):
        fs = kernel.tmpfs
        fs.makedirs("/x/y")
        fs.makedirs("/x/y")  # no error
        fs.makedirs("/x/y/z")

    def test_file_in_the_way_rejected(self, kernel):
        fs = kernel.tmpfs
        fs.create("/blocker")
        with pytest.raises(FileSystemError):
            fs.makedirs("/blocker/child")

    def test_deep_nesting_iterates(self, kernel):
        fs = kernel.pmfs
        fs.makedirs("/one/two/three")
        fs.create("/one/two/three/deep", size=4 * KIB)
        fs.create("/shallow", size=4 * KIB)
        paths = {path for path, _ in fs.iter_files()}
        assert paths == {"/one/two/three/deep", "/shallow"}


class TestFomPaths:
    def test_named_region_nested_path_autocreated(self, aligned_kernel):
        fom = FileOnlyMemory(aligned_kernel)
        process = aligned_kernel.spawn("p")
        region = fom.allocate(
            process, 1 * MIB, name="/svc/db/segment0", persistent=True
        )
        assert fom.fs.exists("/svc/db/segment0")
        fom.release(region)
        assert fom.fs.exists("/svc/db/segment0")  # persistent survives

    def test_guard_gap_between_regions(self, aligned_kernel):
        fom = FileOnlyMemory(aligned_kernel)
        process = aligned_kernel.spawn("p")
        a = fom.allocate(process, 2 * MIB)
        b = fom.allocate(process, 2 * MIB)
        gap = b.vaddr - (a.vaddr + a.length)
        assert gap >= fom.guard_gap_bytes

    def test_guard_gap_configurable(self, aligned_kernel):
        fom = FileOnlyMemory(aligned_kernel, guard_gap_bytes=8 * MIB)
        process = aligned_kernel.spawn("p")
        a = fom.allocate(process, 2 * MIB)
        b = fom.allocate(process, 2 * MIB)
        assert b.vaddr - (a.vaddr + a.length) >= 8 * MIB
