"""Sanitizer efficacy: each deliberately broken kernel trips its detector.

Three mutants, one per detector, mirroring the chaos engine's
"prove the check can fail" discipline:

* a skipped TLB shootdown after fork's COW downgrade → TransSan
* a double-freed DRAM block → FrameSan
* a journal commit that never reaches NVM before its metadata apply
  → PersistSan

Each test asserts the violation comes from *exactly* the expected
detector, so a regression in one shadow model cannot hide behind
another.  The clean-workload tests pin the false-positive rate of the
armed suite at zero for the representative paths.
"""

import pytest

from repro.sanitize import DETECTORS, SanitizerError, SanitizerSuite
from repro.units import KIB, PAGE_SIZE
from repro.vm.vma import MapFlags


def _only_violation(suite):
    assert len(suite.violations) == 1, [v.format() for v in suite.violations]
    return suite.violations[0]


class TestTransSanMutant:
    def test_skipped_shootdown_trips_stale_tlb(self, kernel, monkeypatch):
        suite = kernel.arm_sanitizers()
        parent = kernel.spawn("parent")
        sys = kernel.syscalls(parent)
        va = sys.mmap(16 * KIB)
        kernel.access(parent, va, write=True)  # TLB caches a writable entry

        # Mutant: fork downgrades the parent's PTEs to read-only for COW
        # but the shootdown never happens — the stale writable entry
        # survives in the TLB.
        monkeypatch.setattr(
            kernel.cpu, "invalidate_space_range", lambda *a, **kw: None
        )
        sys.fork()

        with pytest.raises(SanitizerError, match="stale-tlb-entry"):
            kernel.access(parent, va, write=True)
        violation = _only_violation(suite)
        assert violation.detector == "trans"
        assert violation.kind == "stale-tlb-entry"

    def test_cow_break_bypassed_by_stale_tlb_entry(self, kernel, monkeypatch):
        # The COW fork replaces per-PTE downgrades with one write-protect
        # bit per shared window; the fork-time shootdown is what forces
        # the parent's next store through the fault path where
        # _cow_break_window runs.  Mutant: drop the shootdown — the stale
        # writable TLB entry lets the store bypass the window
        # write-protect, silently scribbling on frames the child shares.
        suite = kernel.arm_sanitizers()
        parent = kernel.spawn("parent")
        sys = kernel.syscalls(parent)
        va = sys.mmap(16 * KIB)
        kernel.access(parent, va, write=True)  # TLB caches writable entry
        monkeypatch.setattr(
            kernel.cpu, "invalidate_space_range", lambda *a, **kw: None
        )
        sys.fork()
        with pytest.raises(SanitizerError, match="stale-tlb-entry"):
            kernel.access(parent, va, write=True)
        violation = _only_violation(suite)
        assert violation.detector == "trans"
        assert violation.kind == "stale-tlb-entry"
        # The store never faulted: the share was still intact when the
        # sanitizer caught the bypass at the TLB hit itself.
        assert kernel.counters.get("cow_break") == 0

    def test_correct_shootdown_is_clean(self, kernel):
        suite = kernel.arm_sanitizers()
        parent = kernel.spawn("parent")
        sys = kernel.syscalls(parent)
        va = sys.mmap(16 * KIB)
        kernel.access(parent, va, write=True)
        sys.fork()
        kernel.access(parent, va, write=True)  # COW fault, then clean write
        assert suite.violations == []


class TestFrameSanMutant:
    def test_double_free_trips_framesan(self, kernel):
        suite = kernel.arm_sanitizers()
        pfn = kernel.dram_buddy.alloc(0)
        kernel.dram_buddy.free(pfn)
        with pytest.raises(SanitizerError, match="double-free"):
            kernel.dram_buddy.free(pfn)
        violation = _only_violation(suite)
        assert violation.detector == "frame"
        assert violation.kind == "double-free"

    def test_forgotten_fork_user_trips_use_after_free(self, kernel):
        # A fork-shared anonymous backing defers frame frees until its
        # last user detaches.  Mutant: the share "forgets" the child user
        # (the donor-refcount bug class), so the parent's unmap frees
        # frames the child's subtree-shared page table still translates.
        # FrameSan alone must catch the child's next access — arm only
        # the frame detector so TransSan cannot mask it at free time.
        suite = kernel.arm_sanitizers(SanitizerSuite(detectors=("frame",)))
        parent = kernel.spawn("parent")
        sys = kernel.syscalls(parent)
        va = sys.mmap(16 * KIB, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
        child = sys.fork()
        vma = parent.space.find_vma(va)
        vma.backing._users = 1  # mutant: drop the child's reference
        sys.munmap(va, 16 * KIB)
        with pytest.raises(SanitizerError, match="use-after-free"):
            kernel.access(child, va)
        violation = _only_violation(suite)
        assert violation.detector == "frame"
        assert violation.kind == "use-after-free"

    def test_single_free_is_clean(self, kernel):
        suite = kernel.arm_sanitizers()
        pfn = kernel.dram_buddy.alloc(2)
        kernel.dram_buddy.free(pfn)
        assert suite.violations == []


class TestPersistSanMutant:
    def test_skipped_commit_trips_persistsan(self, kernel, monkeypatch):
        suite = kernel.arm_sanitizers()
        proc = kernel.spawn("writer")
        sys = kernel.syscalls(proc)
        fd = sys.open(kernel.pmfs, "/journal-mutant", create=True)

        # Mutant: the commit write is dropped before reaching NVM, yet
        # the allocation transaction applies its metadata anyway.
        monkeypatch.setattr(
            kernel.pmfs, "_journal_commit", lambda record: None
        )
        with pytest.raises(SanitizerError, match="apply-before-commit"):
            sys.pwrite(fd, 0, b"x" * PAGE_SIZE)
        violation = _only_violation(suite)
        assert violation.detector == "persist"
        assert violation.kind == "apply-before-commit"

    def test_committed_write_is_clean(self, kernel):
        suite = kernel.arm_sanitizers()
        proc = kernel.spawn("writer")
        sys = kernel.syscalls(proc)
        fd = sys.open(kernel.pmfs, "/journal-clean", create=True)
        sys.pwrite(fd, 0, b"x" * PAGE_SIZE)
        sys.close(fd)
        sys.unlink(kernel.pmfs, "/journal-clean")
        assert suite.violations == []


class TestArming:
    def test_arm_returns_bound_suite(self, kernel):
        suite = kernel.arm_sanitizers()
        assert kernel.sanitizers is suite
        assert kernel.counters.sanitize is suite
        assert suite.detectors == DETECTORS

    def test_disarm_detaches(self, kernel):
        kernel.arm_sanitizers()
        kernel.disarm_sanitizers()
        assert kernel.sanitizers is None
        assert kernel.counters.sanitize is None

    def test_detector_subset(self, kernel):
        suite = kernel.arm_sanitizers(SanitizerSuite(detectors=("frame",)))
        pfn = kernel.dram_buddy.alloc(0)
        kernel.dram_buddy.free(pfn)
        with pytest.raises(SanitizerError):
            kernel.dram_buddy.free(pfn)
        assert suite.detectors == ("frame",)

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError, match="unknown detector"):
            SanitizerSuite(detectors=("frame", "asan"))
        with pytest.raises(ValueError, match="at least one"):
            SanitizerSuite(detectors=())

    def test_collect_mode_does_not_halt(self, kernel):
        suite = kernel.arm_sanitizers(SanitizerSuite(halt=False))
        pfn = kernel.dram_buddy.alloc(0)
        kernel.dram_buddy.free(pfn)
        with pytest.raises(ValueError):  # the allocator's own error, not ours
            kernel.dram_buddy.free(pfn)
        assert _only_violation(suite).kind == "double-free"

    def test_violation_bumps_counter_and_report(self, kernel):
        suite = kernel.arm_sanitizers(SanitizerSuite(halt=False))
        pfn = kernel.dram_buddy.alloc(0)
        kernel.dram_buddy.free(pfn)
        with pytest.raises(ValueError):
            kernel.dram_buddy.free(pfn)
        assert kernel.counters.get("sanitize_violation") == 1
        report = suite.report()
        assert report["violation_count"] == 1
        assert report["violations"][0]["detector"] == "frame"
        assert report["armed_detectors"] == list(DETECTORS)
        assert report["checks"]  # the suite actually checked something


class TestCleanWorkloads:
    def test_fault_fork_write_unlink_crash_cycle(self, kernel):
        suite = kernel.arm_sanitizers()
        proc = kernel.spawn("clean")
        sys = kernel.syscalls(proc)
        va = sys.mmap(64 * KIB)
        kernel.access_range(proc, va, 64 * KIB, write=True)
        sys.fork()
        fd = sys.open(kernel.pmfs, "/clean-cycle", create=True, size=8 * KIB)
        sys.pwrite(fd, 0, b"y" * KIB)
        sys.close(fd)
        sys.munmap(va, 64 * KIB)
        kernel.crash()
        assert suite.violations == []
        assert sum(suite.checks.values()) > 0

    def test_report_shape_is_stable(self, kernel):
        suite = kernel.arm_sanitizers()
        report = suite.report()
        assert set(report) >= {
            "version",
            "tool",
            "armed_detectors",
            "halt",
            "violation_count",
            "violations",
            "checks",
            "shadow",
            "page_size",
        }
        assert set(report["shadow"]) == set(DETECTORS)
