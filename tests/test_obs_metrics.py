"""MetricsRegistry, LatencyHistogram, and the delta_since clamp fix."""

import pytest

from repro.hw.clock import EventCounters
from repro.obs.metrics import LatencyHistogram, MetricsRegistry, UnknownCounterError


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram("x")
        assert h.count == 0
        assert h.total == 0
        assert h.min is None
        assert h.max == 0
        assert h.p50 == 0
        assert h.mean == 0.0
        assert h.buckets() == []

    def test_observe_updates_summary(self):
        h = LatencyHistogram("x")
        for v in [5, 1, 9]:
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 15, 1, 9)
        assert h.mean == 5.0

    def test_negative_samples_clamp_to_zero(self):
        h = LatencyHistogram("x")
        h.observe(-7)
        assert h.count == 1
        assert h.total == 0
        assert h.min == 0
        assert h.p50 == 0

    def test_power_of_two_bucket_edges(self):
        h = LatencyHistogram("x")
        for v in [0, 1, 2, 3, 4, 7, 8]:
            h.observe(v)
        # bucket b holds values with b significant bits; upper edge 2**b - 1
        assert h.buckets() == [(0, 1), (1, 1), (3, 2), (7, 2), (15, 1)]

    def test_percentile_upper_edge_clamped_to_max(self):
        h = LatencyHistogram("x")
        for _ in range(99):
            h.observe(1)
        h.observe(1000)  # bucket 10, upper edge 1023 — but max is 1000
        assert h.p50 == 1
        assert h.p99 == 1
        assert h.percentile(100) == 1000

    def test_percentile_rank_rounds_up(self):
        h = LatencyHistogram("x")
        h.observe(1)
        h.observe(100)
        # rank ceil(0.5*2)=1 -> first bucket
        assert h.percentile(50) == 1

    def test_percentile_rejects_out_of_range(self):
        h = LatencyHistogram("x")
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_bounded_relative_error(self):
        h = LatencyHistogram("x")
        for v in [100, 200, 300, 400]:
            h.observe(v)
        # p50 rank=2 -> sample 200, bucket edge 255: within 2x of truth.
        assert 200 <= h.p50 < 400


class TestMetricsRegistry:
    def test_is_an_eventcounters(self):
        reg = MetricsRegistry()
        assert isinstance(reg, EventCounters)
        reg.bump("tlb_hit")
        reg.bump("tlb_hit", 2)
        assert reg.get("tlb_hit") == 3
        assert reg.snapshot() == {"tlb_hit": 3}

    def test_histograms_create_on_first_use(self):
        reg = MetricsRegistry()
        reg.observe("page_walk", 45)
        reg.observe("page_walk", 55)
        hist = reg.histogram("page_walk")
        assert hist.count == 2
        assert reg.histograms() == {"page_walk": hist}
        assert [h.name for h in reg.iter_histograms()] == ["page_walk"]

    def test_iter_histograms_sorted_by_name(self):
        reg = MetricsRegistry()
        for name in ["zeta", "alpha", "mid"]:
            reg.observe(name, 1)
        assert [h.name for h in reg.iter_histograms()] == ["alpha", "mid", "zeta"]

    def test_reset_clears_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.bump("tlb_hit")
        reg.observe("span", 10)
        reg.reset()
        assert reg.get("tlb_hit") == 0
        assert reg.histograms() == {}

    def test_strict_rejects_unknown_counter(self):
        reg = MetricsRegistry(strict=True)
        reg.bump("fault_minor")  # canonical: fine
        with pytest.raises(UnknownCounterError):
            reg.bump("made_up_counter")
        assert reg.get("fault_minor") == 1
        assert reg.get("made_up_counter") == 0

    def test_non_strict_accepts_anything(self):
        reg = MetricsRegistry()
        reg.bump("made_up_counter")
        assert reg.get("made_up_counter") == 1

    def test_tracer_attribute_settable_per_instance(self):
        # EventCounters declares tracer=None at class level; the registry
        # (no __slots__) lets components reach a per-kernel tracer through
        # their existing counters reference.
        reg = MetricsRegistry()
        assert reg.tracer is None
        sentinel = object()
        reg.tracer = sentinel
        assert reg.tracer is sentinel
        assert MetricsRegistry().tracer is None


@pytest.mark.parametrize("cls", [EventCounters, MetricsRegistry])
class TestDeltaSinceClamp:
    """Regression: reset() between snapshot and delta must not go negative."""

    def test_reset_mid_measurement_clamps(self, cls):
        counters = cls()
        counters.bump("tlb_hit", 10)
        snapshot = counters.snapshot()
        counters.bump("tlb_hit", 3)
        counters.reset()  # mid-measurement reset (e.g. a crash)
        counters.bump("fault_minor", 2)
        delta = counters.delta_since(snapshot)
        assert delta == {"fault_minor": 2}
        assert all(v > 0 for v in delta.values())

    def test_normal_delta_unaffected(self, cls):
        counters = cls()
        counters.bump("tlb_hit", 1)
        snapshot = counters.snapshot()
        counters.bump("tlb_hit", 4)
        counters.bump("tlb_miss", 1)
        assert counters.delta_since(snapshot) == {"tlb_hit": 4, "tlb_miss": 1}
