"""Golden-figure regression tests.

Each ``bench_fig*`` experiment is re-run at tiny parameter sizes (seconds,
not minutes) and its full output — every series label, x and y — is
compared against a checked-in golden under ``tests/goldens/``.  The
simulator is deterministic, so the goldens are exact today; the numeric
tolerance (15%, floor of 2) exists so deliberate cost-model tweaks don't
break every figure at once while still catching real regressions.

Regenerate after an intentional change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src pytest tests/test_golden_figures.py
"""

import importlib
import json
import os
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "goldens"

#: figure id -> (bench module, tiny-size overrides for module constants)
FIGURES = {
    "fig1a": ("bench_fig1a_mmap_cost", {"SIZES_KB": [4, 64]}),
    "fig1b": ("bench_fig1b_access_cost", {"SIZES_KB": [4, 64]}),
    "fig2": ("bench_fig2_malloc_vs_pmfs", {"PAGE_COUNTS": [1, 64]}),
    "fig3": ("bench_fig3_shared_mappings", {"FILE_MIB": 4, "PROCESSES": 3}),
    "fig4": ("bench_fig4_fault_counts", {"SIZES_KB": [4, 64]}),
    "fig5": ("bench_fig5_tmpfs_vs_dax", {"SIZES_KB": [4, 64]}),
    "fig9": ("bench_fig9_range_translation", {"SIZES_MB": [1, 16]}),
}


def _load_bench(module_name):
    # The bench modules do `from conftest import run_once`; putting the
    # benchmarks dir first resolves that to benchmarks/conftest.py (the
    # tests' own conftest imports as `tests.conftest` — tests is a
    # package — so the top-level name is free).
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    return importlib.import_module(module_name)


def _normalize(value):
    """Reduce an experiment result to plain JSON-able data."""
    from repro.analysis import Series

    if isinstance(value, Series):
        return {"label": value.label, "xs": list(value.xs), "ys": list(value.ys)}
    if isinstance(value, dict):
        return {str(key): _normalize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_normalize(item) for item in value)
    return value


def _close(actual, expected):
    return abs(actual - expected) <= max(2, 0.15 * max(abs(actual), abs(expected)))


def _compare(actual, expected, path, problems):
    """Structural equality with numeric tolerance; collects mismatches."""
    if isinstance(expected, (int, float)) and not isinstance(expected, bool):
        if not isinstance(actual, (int, float)) or not _close(actual, expected):
            problems.append(f"{path}: {actual!r} != golden {expected!r}")
    elif isinstance(expected, list):
        if not isinstance(actual, list) or len(actual) != len(expected):
            problems.append(f"{path}: shape {actual!r} != golden {expected!r}")
        else:
            for index, (a, e) in enumerate(zip(actual, expected)):
                _compare(a, e, f"{path}[{index}]", problems)
    elif isinstance(expected, dict):
        if not isinstance(actual, dict) or sorted(actual) != sorted(expected):
            problems.append(
                f"{path}: keys {sorted(actual) if isinstance(actual, dict) else actual!r}"
                f" != golden {sorted(expected)}"
            )
        else:
            for key in expected:
                _compare(actual[key], expected[key], f"{path}.{key}", problems)
    elif actual != expected:
        problems.append(f"{path}: {actual!r} != golden {expected!r}")


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_figure_matches_golden(figure, monkeypatch):
    module_name, overrides = FIGURES[figure]
    module = _load_bench(module_name)
    for name, value in overrides.items():
        monkeypatch.setattr(module, name, value)
    result = _normalize(module.run_experiment())

    golden_path = GOLDEN_DIR / f"{figure}.json"
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(result, indent=1) + "\n")
        pytest.skip(f"regenerated {golden_path}")
    assert golden_path.exists(), (
        f"no golden for {figure}; run with REPRO_REGEN_GOLDENS=1 to create it"
    )
    expected = json.loads(golden_path.read_text())
    problems = []
    _compare(result, expected, figure, problems)
    assert problems == [], "\n".join(problems)
