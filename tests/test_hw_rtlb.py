"""Range TLB: arbitrary-length entries, LRU, shootdown."""

import pytest

from repro.hw.rtlb import RangeEntry, RangeTlb
from repro.units import GIB, MIB


def rentry(base, limit, offset=0, writable=True, asid=0):
    return RangeEntry(base=base, limit=limit, offset=offset, writable=writable, asid=asid)


class TestRangeEntry:
    def test_covers_boundaries(self):
        e = rentry(0x1000, 0x2000)
        assert e.covers(0x1000)
        assert e.covers(0x2FFF)
        assert not e.covers(0x3000)
        assert not e.covers(0xFFF)

    def test_translate_applies_offset(self):
        e = rentry(0x1000, 0x1000, offset=0x9000)
        assert e.translate(0x1234) == 0xA234

    def test_negative_offset(self):
        e = rentry(0x10000, 0x1000, offset=-0x8000)
        assert e.translate(0x10010) == 0x8010


class TestRangeTlb:
    def test_single_entry_covers_gigabyte(self):
        # The headline property: one entry, arbitrarily large reach.
        rtlb = RangeTlb(capacity=4)
        rtlb.insert(rentry(0, 1 * GIB))
        assert rtlb.lookup(512 * MIB) is not None
        assert rtlb.resident_count() == 1

    def test_miss_outside(self):
        rtlb = RangeTlb()
        rtlb.insert(rentry(0, MIB))
        assert rtlb.lookup(2 * MIB) is None

    def test_asid_isolation(self):
        rtlb = RangeTlb()
        rtlb.insert(rentry(0, MIB, asid=1))
        assert rtlb.lookup(0, asid=2) is None

    def test_lru_eviction_at_capacity(self):
        rtlb = RangeTlb(capacity=2)
        a, b, c = rentry(0, MIB), rentry(2 * MIB, MIB), rentry(4 * MIB, MIB)
        rtlb.insert(a)
        rtlb.insert(b)
        rtlb.lookup(0)  # refresh a
        evicted = rtlb.insert(c)
        assert evicted == b
        assert rtlb.lookup(0) is not None

    def test_invalidate_overlap_shootdown(self):
        rtlb = RangeTlb()
        rtlb.insert(rentry(0, MIB))
        rtlb.insert(rentry(MIB, MIB))
        # Unmapping [0.5 MiB, 1.5 MiB) must shoot down both.
        assert rtlb.invalidate_overlap(MIB // 2, MIB) == 2
        assert rtlb.resident_count() == 0

    def test_invalidate_overlap_ignores_disjoint(self):
        rtlb = RangeTlb()
        rtlb.insert(rentry(0, MIB))
        assert rtlb.invalidate_overlap(2 * MIB, MIB) == 0
        assert rtlb.resident_count() == 1

    def test_flush_asid_and_all(self):
        rtlb = RangeTlb()
        rtlb.insert(rentry(0, MIB, asid=1))
        rtlb.insert(rentry(0, MIB, asid=2))
        assert rtlb.flush_asid(1) == 1
        assert rtlb.flush_all() == 1

    def test_zero_limit_rejected(self):
        with pytest.raises(ValueError):
            RangeTlb().insert(rentry(0, 0))

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            RangeTlb(capacity=0)
