"""Unit helpers: sizes, alignment, formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    GIB,
    KIB,
    MIB,
    PAGE_SIZE,
    align_down,
    align_up,
    fmt_bytes,
    fmt_ns,
    is_aligned,
    pages_for,
)


class TestPagesFor:
    def test_zero_bytes_needs_zero_pages(self):
        assert pages_for(0) == 0

    def test_one_byte_needs_one_page(self):
        assert pages_for(1) == 1

    def test_exact_page_boundary(self):
        assert pages_for(PAGE_SIZE) == 1
        assert pages_for(2 * PAGE_SIZE) == 2

    def test_one_past_boundary_rounds_up(self):
        assert pages_for(PAGE_SIZE + 1) == 2

    def test_huge_page_units(self):
        assert pages_for(3 * MIB, page_size=2 * MIB) == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            pages_for(-1)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            pages_for(100, page_size=0)

    @given(st.integers(min_value=0, max_value=1 << 50))
    def test_covers_exactly(self, size):
        pages = pages_for(size)
        assert pages * PAGE_SIZE >= size
        assert (pages - 1) * PAGE_SIZE < size or pages == 0


class TestAlignment:
    def test_align_down_basics(self):
        assert align_down(4097, 4096) == 4096
        assert align_down(4096, 4096) == 4096
        assert align_down(4095, 4096) == 0

    def test_align_up_basics(self):
        assert align_up(4097, 4096) == 8192
        assert align_up(4096, 4096) == 4096
        assert align_up(1, 4096) == 4096

    def test_is_aligned(self):
        assert is_aligned(2 * MIB, 2 * MIB)
        assert not is_aligned(2 * MIB + 4096, 2 * MIB)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            align_up(10, 3)
        with pytest.raises(ValueError):
            align_down(10, 0)
        with pytest.raises(ValueError):
            is_aligned(10, 6)

    @given(
        st.integers(min_value=0, max_value=1 << 50),
        st.integers(min_value=0, max_value=30),
    )
    def test_align_up_down_bracket_value(self, value, shift):
        alignment = 1 << shift
        down, up = align_down(value, alignment), align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0 and up % alignment == 0
        assert up - down in (0, alignment)


class TestFormatting:
    def test_fmt_bytes_scales(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2 * KIB) == "2.0 KiB"
        assert fmt_bytes(3 * MIB) == "3.0 MiB"
        assert fmt_bytes(GIB) == "1.0 GiB"

    def test_fmt_bytes_negative(self):
        assert fmt_bytes(-2 * KIB) == "-2.0 KiB"

    def test_fmt_ns_scales(self):
        assert fmt_ns(5) == "5 ns"
        assert fmt_ns(2500) == "2.50 us"
        assert fmt_ns(3_000_000) == "3.000 ms"
        assert fmt_ns(2_000_000_000) == "2.000 s"
