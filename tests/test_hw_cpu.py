"""CPU access path: TLB hits, walks, faults, range translations."""

import pytest

from repro.errors import ProtectionError
from repro.hw.cache import CacheModel
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.hw.cpu import Cpu
from repro.hw.rtlb import RangeEntry, RangeTlb
from repro.hw.tlb import Tlb, TlbEntry
from repro.units import MIB, PAGE_SIZE


class FakeSpace:
    """Scriptable TranslationContext for CPU unit tests."""

    def __init__(self, asid=1):
        self._asid = asid
        self.mapped = {}  # vpn -> (pfn, writable)
        self.ranges = []
        self.fault_log = []
        self.fault_action = None  # callable invoked on fault

    @property
    def asid(self):
        return self._asid

    def walk(self, vaddr):
        vpn = vaddr // PAGE_SIZE
        if vpn in self.mapped:
            pfn, writable = self.mapped[vpn]
            return TlbEntry(
                vpn=vpn, pfn=pfn, page_size=PAGE_SIZE, writable=writable,
                asid=self._asid,
            )
        return None

    def lookup_range(self, vaddr):
        for entry in self.ranges:
            if entry.covers(vaddr):
                return entry
        return None

    def handle_fault(self, vaddr, write):
        self.fault_log.append((vaddr, write))
        if self.fault_action is None:
            raise ProtectionError(f"segv at {vaddr:#x}")
        self.fault_action(vaddr, write)


def make_cpu(with_rtlb=False):
    clock = SimClock()
    counters = EventCounters()
    costs = CostModel()
    cache = CacheModel(clock, costs, counters)
    rtlb = RangeTlb(4) if with_rtlb else None
    cpu = Cpu(clock, costs, counters, cache, Tlb(), rtlb)
    return cpu, clock, counters


class TestBasicAccess:
    def test_walk_then_tlb_hit(self):
        cpu, _, counters = make_cpu()
        space = FakeSpace()
        space.mapped[4] = (44, True)
        cpu.access(space, 4 * PAGE_SIZE)
        cpu.access(space, 4 * PAGE_SIZE + 64)
        assert counters.get("tlb_miss") == 1
        assert counters.get("tlb_hit") == 1

    def test_returns_physical_address(self):
        cpu, _, _ = make_cpu()
        space = FakeSpace()
        space.mapped[4] = (44, True)
        assert cpu.access(space, 4 * PAGE_SIZE + 100) == 44 * PAGE_SIZE + 100

    def test_negative_address_rejected(self):
        cpu, _, _ = make_cpu()
        with pytest.raises(ProtectionError):
            cpu.access(FakeSpace(), -1)

    def test_unmapped_access_faults_and_retries(self):
        cpu, _, counters = make_cpu()
        space = FakeSpace()

        def install(vaddr, write):
            space.mapped[vaddr // PAGE_SIZE] = (7, True)

        space.fault_action = install
        paddr = cpu.access(space, 3 * PAGE_SIZE)
        assert paddr == 7 * PAGE_SIZE
        assert counters.get("fault_trap") == 1
        assert space.fault_log == [(3 * PAGE_SIZE, False)]

    def test_segfault_propagates(self):
        cpu, _, _ = make_cpu()
        with pytest.raises(ProtectionError, match="segv"):
            cpu.access(FakeSpace(), 0x5000)

    def test_handler_that_never_maps_gives_up(self):
        cpu, _, _ = make_cpu()
        space = FakeSpace()
        space.fault_action = lambda vaddr, write: None  # resolves nothing
        with pytest.raises(ProtectionError, match="retries"):
            cpu.access(space, 0x5000)


class TestWritePermissions:
    def test_write_to_readonly_faults(self):
        cpu, _, counters = make_cpu()
        space = FakeSpace()
        space.mapped[1] = (9, False)

        def upgrade(vaddr, write):
            space.mapped[1] = (9, True)

        space.fault_action = upgrade
        cpu.access(space, PAGE_SIZE, write=True)
        assert counters.get("fault_trap") == 1

    def test_stale_tlb_entry_invalidated_on_cow(self):
        cpu, _, _ = make_cpu()
        space = FakeSpace()
        space.mapped[1] = (9, False)
        cpu.access(space, PAGE_SIZE)  # read fills TLB with read-only entry

        def upgrade(vaddr, write):
            space.mapped[1] = (10, True)

        space.fault_action = upgrade
        paddr = cpu.access(space, PAGE_SIZE, write=True)
        assert paddr == 10 * PAGE_SIZE  # new frame, not the stale one


class TestRangeTranslations:
    def test_range_hit_bypasses_page_tlb(self):
        cpu, _, counters = make_cpu(with_rtlb=True)
        space = FakeSpace()
        space.ranges.append(
            RangeEntry(base=0, limit=4 * MIB, offset=1 * MIB, writable=True, asid=1)
        )
        cpu.access(space, 100)
        cpu.access(space, 2 * MIB)
        assert counters.get("rtlb_miss") == 1
        assert counters.get("rtlb_hit") == 1
        assert counters.get("tlb_miss") == 0

    def test_range_readonly_write_faults(self):
        cpu, _, _ = make_cpu(with_rtlb=True)
        space = FakeSpace()
        space.ranges.append(
            RangeEntry(base=0, limit=MIB, offset=0, writable=False, asid=1)
        )
        with pytest.raises(ProtectionError):
            cpu.access(space, 0, write=True)

    def test_falls_back_to_paging_outside_ranges(self):
        cpu, _, counters = make_cpu(with_rtlb=True)
        space = FakeSpace()
        space.mapped[1] = (5, True)
        cpu.access(space, PAGE_SIZE)
        assert counters.get("tlb_miss") == 1


class TestMaintenance:
    def test_access_range_strides(self):
        cpu, _, counters = make_cpu()
        space = FakeSpace()
        for vpn in range(4):
            space.mapped[vpn] = (vpn + 10, True)
        cpu.access_range(space, 0, 4 * PAGE_SIZE, stride=PAGE_SIZE)
        assert counters.get("tlb_miss") == 4

    def test_access_range_validates_args(self):
        cpu, _, _ = make_cpu()
        with pytest.raises(ValueError):
            cpu.access_range(FakeSpace(), 0, -1)
        with pytest.raises(ValueError):
            cpu.access_range(FakeSpace(), 0, 100, stride=0)

    def test_invalidate_page_charges_only_on_drop(self):
        cpu, clock, _ = make_cpu()
        space = FakeSpace()
        space.mapped[1] = (5, True)
        cpu.access(space, PAGE_SIZE)
        before = clock.now
        cpu.invalidate_page(PAGE_SIZE, asid=1)
        assert clock.now > before
        before = clock.now
        cpu.invalidate_page(PAGE_SIZE, asid=1)  # already gone
        assert clock.now == before

    def test_switch_address_space_flush(self):
        cpu, _, counters = make_cpu()
        space = FakeSpace()
        space.mapped[1] = (5, True)
        cpu.access(space, PAGE_SIZE)
        cpu.switch_address_space(2, flush=True)
        assert cpu.tlb.resident_count() == 0
        assert counters.get("cr3_switch") == 1
