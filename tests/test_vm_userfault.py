"""userfaultfd-style regions: upcalls, resolution, self-managed eviction."""

import pytest

from repro.errors import MappingError, ProtectionError
from repro.units import KIB, PAGE_SIZE
from repro.vm.userfault import UPCALL_NS, UserFaultRegion


@pytest.fixture
def env(kernel):
    process = kernel.spawn("app")
    return kernel, process


class TestFaultDelivery:
    def test_fault_upcalls_to_handler(self, env):
        kernel, process = env
        seen = []
        region = UserFaultRegion(
            kernel, process, 16 * PAGE_SIZE,
            handler=lambda page: seen.append(page) or b"data",
        )
        kernel.access(process, region.vaddr + 3 * PAGE_SIZE)
        assert seen == [3]
        assert region.delivered == 1
        assert kernel.counters.get("userfault_upcall") == 1

    def test_upcall_cost_charged(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, PAGE_SIZE, handler=lambda page: None
        )
        with kernel.measure() as m:
            kernel.access(process, region.vaddr)
        assert m.elapsed_ns >= UPCALL_NS

    def test_resolved_page_needs_no_second_upcall(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, PAGE_SIZE, handler=lambda page: b"x"
        )
        kernel.access(process, region.vaddr)
        kernel.access(process, region.vaddr + 64)
        assert region.delivered == 1

    def test_zeropage_resolution(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, PAGE_SIZE, handler=lambda page: None
        )
        kernel.access(process, region.vaddr)
        assert kernel.counters.get("userfault_zeropage") == 1

    def test_copy_resolution_counted(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, PAGE_SIZE, handler=lambda page: b"payload"
        )
        kernel.access(process, region.vaddr)
        assert kernel.counters.get("userfault_copy") == 1

    def test_oversized_resolution_rejected(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, PAGE_SIZE,
            handler=lambda page: b"z" * (PAGE_SIZE + 1),
        )
        with pytest.raises(MappingError):
            kernel.access(process, region.vaddr)

    def test_double_resolve_rejected(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, PAGE_SIZE, handler=lambda page: b"x"
        )
        kernel.access(process, region.vaddr)
        with pytest.raises(MappingError):
            region.resolve(0, b"again")


class TestSelfManagedSwapping:
    def test_evict_then_refault(self, env):
        kernel, process = env
        store = {}

        def handler(page):
            return store.get(page, b"\x00")

        region = UserFaultRegion(kernel, process, 8 * PAGE_SIZE, handler=handler)
        kernel.access(process, region.vaddr, write=True)
        store[0] = b"swapped-out-contents"
        assert region.evict(0)
        assert region.resident_pages() == 0
        kernel.access(process, region.vaddr)  # refault -> handler
        assert region.delivered == 2

    def test_evict_nonresident_false(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, PAGE_SIZE, handler=lambda page: None
        )
        assert not region.evict(0)

    def test_eviction_frees_frames(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, 4 * PAGE_SIZE, handler=lambda page: None
        )
        kernel.access_range(process, region.vaddr, 4 * PAGE_SIZE)
        free_before = kernel.dram_buddy.free_frames
        for page in range(4):
            region.evict(page)
        assert kernel.dram_buddy.free_frames == free_before + 4


class TestLifecycle:
    def test_populate_rejected(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, 4 * PAGE_SIZE, handler=lambda page: None
        )
        with pytest.raises(MappingError):
            process.space.populate(region.vaddr, 4 * PAGE_SIZE)

    def test_close_releases_everything(self, env):
        kernel, process = env
        region = UserFaultRegion(
            kernel, process, 4 * PAGE_SIZE, handler=lambda page: b"x"
        )
        kernel.access_range(process, region.vaddr, 4 * PAGE_SIZE)
        free_before = kernel.dram_buddy.free_frames
        region.close()
        # The 4 data frames come back; the extent unmap may return the
        # window's page-table node frame on top of them.
        assert kernel.dram_buddy.free_frames >= free_before + 4
        with pytest.raises(ProtectionError):
            kernel.access(process, region.vaddr)

    def test_bad_length_rejected(self, env):
        kernel, process = env
        with pytest.raises(MappingError):
            UserFaultRegion(kernel, process, 100, handler=lambda page: None)
