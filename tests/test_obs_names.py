"""Counter-name audit: every bump() literal in src/ must be canonical."""

import pathlib
import re

from repro.obs.names import (
    CANONICAL_COUNTERS,
    COUNTER_PREFIXES,
    SUBSYSTEMS,
    check_convention,
    is_canonical,
)

SRC = pathlib.Path(__file__).parent.parent / "src"

#: ``.bump("name")`` / ``.bump('name', n)`` literals.
BUMP_RE = re.compile(r"\.bump\(\s*[\"']([a-z0-9_]+)[\"']")

#: f-string bump sites like ``bump(f"sys_{name}")`` — audited via the
#: explicit ``sys_*`` entries in the canonical list instead.
BUMP_FSTRING_RE = re.compile(r"\.bump\(\s*f[\"']([a-z0-9_{}]+)[\"']")


def iter_bump_literals():
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for match in BUMP_RE.finditer(text):
            yield path.relative_to(SRC), match.group(1)


class TestBumpSiteAudit:
    def test_every_bump_literal_is_canonical(self):
        offenders = [
            f"{path}: {name}"
            for path, name in iter_bump_literals()
            if not is_canonical(name)
        ]
        assert not offenders, (
            "bump() sites using counters missing from "
            "repro.obs.names.CANONICAL_COUNTERS:\n" + "\n".join(offenders)
        )

    def test_audit_actually_sees_the_tree(self):
        names = {name for _path, name in iter_bump_literals()}
        # sanity: the scan found a meaningful slice of the hot counters
        assert {"tlb_hit", "tlb_miss", "fault_trap", "pte_write"} <= names
        assert len(names) >= 40

    def test_dynamic_fault_counter_names_are_canonical(self):
        # FaultType.counter_name builds "fault_<kind>" at run time; the
        # literal scan can't see those, so pin them here.
        from repro.paging.fault import FaultType

        for kind in FaultType:
            assert is_canonical(kind.counter_name), kind

    def test_fstring_bumps_limited_to_syscall_dispatch(self):
        dynamic = []
        for path in sorted(SRC.rglob("*.py")):
            for match in BUMP_FSTRING_RE.finditer(path.read_text()):
                dynamic.append((path.relative_to(SRC), match.group(1)))
        assert all(template == "sys_{name}" for _p, template in dynamic), dynamic


class TestConvention:
    def test_every_canonical_name_follows_convention(self):
        offenders = sorted(
            name for name in CANONICAL_COUNTERS if not check_convention(name)
        )
        assert not offenders, offenders

    def test_prefixes_are_all_used(self):
        used = {name.split("_")[0] for name in CANONICAL_COUNTERS}
        assert used == COUNTER_PREFIXES

    def test_check_convention_rejects_bare_subsystem(self):
        assert not check_convention("tlb")

    def test_check_convention_rejects_unknown_prefix(self):
        assert not check_convention("bogus_event")

    def test_renamed_counters_present_and_old_names_gone(self):
        # PR rename sweep: subsystem_verb_object everywhere.
        assert is_canonical("fault_trap") and not is_canonical("page_fault")
        assert is_canonical("walk_start") and not is_canonical("page_walk")
        assert is_canonical("fork_call") and not is_canonical("fork")
        assert is_canonical("vm_page_evict") and not is_canonical("page_evicted")

    def test_subsystem_tags_are_coarse(self):
        assert "kernel" in SUBSYSTEMS
        assert len(SUBSYSTEMS) < 12
