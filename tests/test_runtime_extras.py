"""Runtime-layer extras: cross-checks between objheap, log, and the OS."""

import pytest

from repro.core.fom import FileOnlyMemory
from repro.runtime import LogStructuredStore, ObjectHeap
from repro.units import KIB, MIB, PAGE_SIZE


@pytest.fixture
def fom_env(aligned_kernel):
    fom = FileOnlyMemory(aligned_kernel)
    return aligned_kernel, fom, aligned_kernel.spawn("rt")


class TestObjHeapAccess:
    def test_objects_are_real_memory(self, fom_env):
        kernel, fom, process = fom_env
        heap = ObjectHeap(fom, process)
        ref = heap.new(256)
        # The address is mapped and writable through the CPU.
        paddr = kernel.access(process, ref.addr, write=True)
        assert paddr > 0

    def test_objects_in_one_region_share_extent(self, fom_env):
        kernel, fom, process = fom_env
        heap = ObjectHeap(fom, process)
        first = heap.new(64)
        second = heap.new(64)
        pa1 = kernel.access(process, first.addr)
        pa2 = kernel.access(process, second.addr)
        assert abs(pa2 - pa1) < 2 * MIB  # same extent

    def test_region_death_revokes_access(self, fom_env):
        from repro.errors import ProtectionError

        kernel, fom, process = fom_env
        heap = ObjectHeap(fom, process)
        region = heap.create_region()
        ref = heap.new(64, region=region)
        kernel.access(process, ref.addr, write=True)
        heap.free_region(region)
        with pytest.raises(ProtectionError):
            kernel.access(process, ref.addr)


class TestLogAndHeapCoexist:
    def test_shared_fom_no_interference(self, fom_env):
        kernel, fom, process = fom_env
        heap = ObjectHeap(fom, process)
        log = LogStructuredStore(fom, process, segment_bytes=2 * MIB)
        refs = [heap.new(128) for _ in range(50)]
        for key in range(50):
            log.put(key, b"v" * 100)
        heap.destroy()
        # Heap teardown must not have touched the log's segments.
        for key in range(50):
            assert log.get(key) == b"v" * 100
        log.destroy()
        assert kernel.pmfs.fsck() == []

    def test_all_storage_returns_after_both_destroy(self, fom_env):
        kernel, fom, process = fom_env
        free_before = kernel.nvm_allocator.free_blocks
        heap = ObjectHeap(fom, process)
        log = LogStructuredStore(fom, process, segment_bytes=2 * MIB)
        for index in range(20):
            heap.new(4 * KIB)
            log.put(index, b"x" * 1000)
        heap.destroy()
        log.destroy()
        assert kernel.nvm_allocator.free_blocks == free_before
