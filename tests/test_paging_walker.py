"""Page walker: per-level references, virtualized 2-D walks."""

import pytest

from repro.hw.cache import CacheModel
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.paging.pagetable import PageTable
from repro.paging.walker import PageWalker
from repro.units import HUGE_PAGE_2M, PAGE_SIZE


def make_walker(levels=4, virtualized=False):
    clock = SimClock()
    counters = EventCounters()
    costs = CostModel()
    cache = CacheModel(clock, costs, counters)
    walker = PageWalker(cache, clock, costs, counters, virtualized=virtualized)
    table = PageTable(levels=levels)
    return walker, table, clock, counters


class TestWalks:
    def test_successful_walk_returns_entry(self):
        walker, table, _, _ = make_walker()
        table.map(0x4000, 7)
        entry = walker.walk(table, 0x4000, asid=3)
        assert entry.pfn == 7 and entry.asid == 3

    def test_walk_references_one_per_level(self):
        walker, table, _, counters = make_walker(levels=4)
        table.map(0, 1)
        walker.walk(table, 0)
        assert counters.get("walk_ref") == 4

    def test_five_level_walk_costs_more(self):
        walker4, table4, clock4, _ = make_walker(levels=4)
        walker5, table5, clock5, _ = make_walker(levels=5)
        table4.map(0, 1)
        table5.map(0, 1)
        walker4.walk(table4, 0)
        walker5.walk(table5, 0)
        assert clock5.now > clock4.now

    def test_huge_page_walk_is_shorter(self):
        walker, table, _, counters = make_walker()
        table.map(0, 1, page_size=HUGE_PAGE_2M)
        walker.walk(table, 123)
        assert counters.get("walk_ref") == 3  # stops at the PMD leaf

    def test_failed_walk_still_pays(self):
        walker, table, clock, counters = make_walker()
        assert walker.walk(table, 0x123456) is None
        assert counters.get("walk_ref") >= 1
        assert clock.now > 0

    def test_partial_tree_failed_walk(self):
        walker, table, _, counters = make_walker()
        table.map(0, 1)  # builds the subtree for low addresses
        counters.reset()
        assert walker.walk(table, 17 * PAGE_SIZE) is None
        assert counters.get("walk_ref") == 4  # full descent, empty leaf slot

    def test_warm_walk_cheaper_than_cold(self):
        walker, table, clock, _ = make_walker()
        table.map(0, 1)
        start = clock.now
        walker.walk(table, 0)
        cold = clock.now - start
        start = clock.now
        walker.walk(table, 0)
        warm = clock.now - start
        assert warm < cold  # page-table nodes now cached

    def test_entry_vpn_in_page_units(self):
        walker, table, _, _ = make_walker()
        table.map(HUGE_PAGE_2M, 4, page_size=HUGE_PAGE_2M)
        entry = walker.walk(table, HUGE_PAGE_2M + 100)
        assert entry.vpn == 1 and entry.page_size == HUGE_PAGE_2M


class TestVirtualized:
    def test_reference_formula(self):
        walker, _, _, _ = make_walker(virtualized=True)
        assert walker.references_per_walk(4) == 24
        flat, _, _, _ = make_walker(virtualized=False)
        assert flat.references_per_walk(4) == 4

    def test_five_level_nested_is_35(self):
        # §2: 5-level paging "requires up to 35 memory references in
        # virtualized systems".
        walker, _, _, _ = make_walker(levels=5, virtualized=True)
        assert walker.references_per_walk(5) == 35

    def test_nested_walk_charges_extra_refs(self):
        flat_walker, flat_table, flat_clock, _ = make_walker()
        virt_walker, virt_table, virt_clock, virt_counters = make_walker(
            virtualized=True
        )
        flat_table.map(0, 1)
        virt_table.map(0, 1)
        flat_walker.walk(flat_table, 0)
        virt_walker.walk(virt_table, 0)
        assert virt_clock.now > flat_clock.now
        assert virt_counters.get("nested_walk_ref") == 4 * 4 + 4
