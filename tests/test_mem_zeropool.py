"""Pre-zeroed frame pool: O(1) foreground, background ledger."""

import pytest

from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion
from repro.mem.zeropool import ZeroPool
from repro.units import MIB, PAGE_SIZE


def make_pool(target=8, region_size=MIB):
    clock = SimClock()
    counters = EventCounters()
    region = MemoryRegion(start=0, size=region_size, tech=MemoryTechnology.DRAM)
    buddy = BuddyAllocator(region)
    pool = ZeroPool(buddy, target, clock=clock, costs=CostModel(), counters=counters)
    return pool, buddy, clock, counters


class TestForeground:
    def test_stocked_take_is_free_of_zeroing(self):
        pool, _, clock, counters = make_pool()
        pool.refill()
        before = clock.now
        pool.take()
        assert clock.now == before  # no foreground zeroing charged
        assert counters.get("zeropool_hit") == 1

    def test_empty_pool_falls_back_to_foreground_zero(self):
        pool, _, clock, counters = make_pool()
        before = clock.now
        pool.take()
        assert clock.now - before >= CostModel().zero_page_ns(PAGE_SIZE)
        assert counters.get("zeropool_miss") == 1
        assert pool.ledger()["foreground_zero_ns"] > 0

    def test_give_back_returns_frame(self):
        pool, buddy, _, _ = make_pool()
        pool.refill()
        free_before = buddy.free_frames
        pfn = pool.take()
        pool.give_back(pfn)
        assert buddy.free_frames == free_before + 1


class TestBackground:
    def test_refill_reaches_target(self):
        pool, _, _, _ = make_pool(target=8)
        added = pool.refill()
        assert added == 8
        assert pool.available == 8

    def test_refill_bounded(self):
        pool, _, _, _ = make_pool(target=8)
        assert pool.refill(max_frames=3) == 3
        assert pool.available == 3

    def test_refill_charges_background_not_foreground(self):
        pool, _, clock, _ = make_pool(target=4)
        pool.refill()
        assert clock.now == 0  # foreground clock untouched
        assert pool.ledger()["background_zero_ns"] == 4 * CostModel().zero_page_ns(
            PAGE_SIZE
        )

    def test_refill_stops_at_oom(self):
        pool, _, _, _ = make_pool(target=10_000, region_size=16 * PAGE_SIZE)
        added = pool.refill()
        assert added == 16

    def test_ledger_reports_reserved_space(self):
        pool, _, _, _ = make_pool(target=4)
        pool.refill()
        assert pool.ledger()["reserved_bytes"] == 4 * PAGE_SIZE

    def test_negative_target_rejected(self):
        region = MemoryRegion(start=0, size=MIB, tech=MemoryTechnology.DRAM)
        with pytest.raises(ValueError):
            ZeroPool(BuddyAllocator(region), -1)
