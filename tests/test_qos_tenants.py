"""Multi-tenant oversubscription workload: determinism and acceptance."""

from __future__ import annotations


from repro.kernel import Kernel, MachineConfig
from repro.sanitize import SanitizerSuite
from repro.units import MIB
from repro.workloads import make_specs, run_tenants


class TestSpecs:
    def test_fleet_oversubscribes_dram(self):
        specs = make_specs(tenants=16, dram_frames=16384, oversubscribe=2.0, seed=0)
        assert len(specs) == 16
        assert sum(s.working_set_pages for s in specs) >= 2 * 16384
        # Hard limits stay under DRAM so the well-behaved majority can
        # always make progress once the noisy tenants are gone.
        assert sum(s.max_frames for s in specs) <= 16384

    def test_noisy_minority_marked(self):
        specs = make_specs(tenants=32, dram_frames=16384, oversubscribe=2.0, seed=1)
        noisy = [s for s in specs if s.noisy]
        assert 1 <= len(noisy) < len(specs) // 2

    def test_limits_are_ordered(self):
        for spec in make_specs(tenants=8, dram_frames=16384, oversubscribe=2.0, seed=2):
            assert 0 < spec.high <= spec.max_frames


class TestRuns:
    def test_same_seed_is_bit_identical(self):
        a = run_tenants(tenants=6, seed=7)
        b = run_tenants(tenants=6, seed=7)
        assert a.to_json() == b.to_json()

    def test_different_seed_diverges(self):
        a = run_tenants(tenants=6, seed=1)
        b = run_tenants(tenants=6, seed=2)
        assert a.to_json() != b.to_json()

    def test_small_fleet_is_clean(self):
        report = run_tenants(tenants=8, seed=0)
        assert report.problems() == []
        assert report.ok()
        # Backpressure actually engaged: this is an oversubscribed
        # fleet, not an idle one.
        assert report.counters.get("qos_throttle_stall", 0) > 0
        assert report.counters.get("qos_reclaim_batch", 0) > 0

    def test_report_json_shape(self):
        report = run_tenants(tenants=6, seed=3)
        payload = report.to_json()
        assert payload["version"] == 1
        assert payload["seed"] == 3
        assert len(payload["tenants"]) == 6
        for tenant in payload["tenants"]:
            assert {"name", "killed", "requests_done", "p99_ns"} <= set(tenant)

    def test_sanitizers_stay_clean_under_pressure(self):
        kernel = Kernel(
            MachineConfig(dram_bytes=64 * MIB, swap_pages=4 * 16384)
        )
        kernel.arm_sanitizers(SanitizerSuite())
        report = run_tenants(tenants=8, seed=5, kernel=kernel)
        assert report.ok()
        assert kernel.counters.get("sanitize_violation") == 0


class TestAcceptance:
    def test_64_tenants_2x_oversubscription(self):
        """The PR's acceptance scenario: a 64-tenant fleet at 2x DRAM
        oversubscription completes with zero unhandled faults, throttled
        tenants progress, and OOM kills stay inside offending cgroups."""
        report = run_tenants(tenants=64, seed=0, oversubscribe=2.0)
        assert report.problems() == []
        killed = [r for r in report.results if r.killed]
        assert killed, "the noisy minority must hit their hard limits"
        for result in killed:
            assert result.spec.noisy
        for kill in report.kills:
            assert kill["cgroup"] == kill["offending"]
        survivors = [r for r in report.results if not r.killed]
        assert all(r.requests_done == r.requests_total for r in survivors)
