"""AST cost-shape linter on synthetic sources."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.astcheck import lint_source, lint_tree, module_name_for
from repro.lint.baseline import apply_baseline, load_baseline


def lint(source: str):
    return lint_source(textwrap.dedent(source), module="synthetic")


class TestSizeLoops:
    def test_clean_o1_function_passes(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(table, key):
                return table.get(key)
            """
        )
        assert result.violations == []
        assert result.functions_checked == 1

    def test_size_loop_in_o1_flags(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(pages):
                for page in pages:
                    touch(page)
            """
        )
        assert len(result.violations) == 1
        assert result.violations[0].rule == "o1-size-loop"
        assert result.violations[0].function == "synthetic.f"

    def test_comprehension_flags_too(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(entries):
                return [e for e in entries if e.live]
            """
        )
        assert [v.rule for v in result.violations] == ["o1-size-loop"]

    def test_constant_bounded_loop_passes(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f():
                total = 0
                for i in range(4):
                    total += i
                return total
            """
        )
        assert result.violations == []

    def test_undecorated_function_ignored(self):
        result = lint(
            """
            def f(pages):
                for page in pages:
                    touch(page)
            """
        )
        assert result.violations == []
        assert result.functions_checked == 0

    def test_linear_class_tolerates_depth_one_loop(self):
        result = lint(
            """
            from repro.lint import complexity

            @complexity("n")
            def f(pages):
                for page in pages:
                    touch(page)
            """
        )
        assert result.violations == []

    def test_linear_class_flags_nested_size_loops(self):
        result = lint(
            """
            from repro.lint import complexity

            @complexity("n")
            def f(vmas):
                for vma in vmas:
                    for page in vma.pages:
                        touch(page)
            """
        )
        assert [v.rule for v in result.violations] == ["o1-nested-size-loop"]


class TestChargeAndRecursion:
    def test_charge_inside_loop_flags(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(self, items):
                for item in items:
                    self.clock.advance(10)
            """
        )
        rules = {v.rule for v in result.violations}
        assert "o1-charge-in-loop" in rules

    def test_recursion_in_o1_flags(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(node):
                if node.child:
                    return f(node.child)
                return node
            """
        )
        assert [v.rule for v in result.violations] == ["o1-recursion"]

    def test_call_inside_nested_def_is_not_recursion(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(node):
                def helper():
                    return f
                return helper
            """
        )
        assert result.violations == []


class TestInlineAllows:
    def test_allow_on_flagged_line(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(pages):
                for page in pages:  # o1: allow(o1-size-loop) -- bounded
                    touch(page)
            """
        )
        assert result.violations == []
        assert result.inline_suppressed == 1

    def test_allow_on_previous_line(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(pages):
                # o1: allow(o1-size-loop) -- bounded by geometry
                for page in pages:
                    touch(page)
            """
        )
        assert result.violations == []
        assert result.inline_suppressed == 1

    def test_allow_on_def_line_covers_body(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(pages):  # o1: allow(o1-size-loop) -- whole function
                for page in pages:
                    touch(page)
                stale = [p for p in pages]
            """
        )
        assert result.violations == []
        assert result.inline_suppressed == 2

    def test_allow_for_other_rule_does_not_suppress(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(pages):
                for page in pages:  # o1: allow(o1-recursion) -- wrong rule
                    touch(page)
            """
        )
        assert [v.rule for v in result.violations] == ["o1-size-loop"]


class TestTreeAndBaseline:
    def test_module_name_for(self):
        root = Path("/x/src/repro")
        assert (
            module_name_for(root / "mem" / "buddy.py", root, "repro")
            == "repro.mem.buddy"
        )
        assert module_name_for(root / "__init__.py", root, "repro") == "repro"

    def test_lint_tree_walks_files(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "good.py").write_text(
            "from repro.lint import o1\n\n@o1\ndef g():\n    return 1\n"
        )
        (pkg / "bad.py").write_text(
            "from repro.lint import o1\n\n@o1\ndef b(pages):\n"
            "    for p in pages:\n        x(p)\n"
        )
        result = lint_tree(pkg, package="pkg")
        assert result.files_checked == 2
        assert result.functions_checked == 2
        assert [v.function for v in result.violations] == ["pkg.bad.b"]

    def test_baseline_suppresses_known_violation(self, tmp_path):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(pages):
                for page in pages:
                    touch(page)
            """
        )
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "function": "synthetic.f",
                            "rule": "o1-size-loop",
                            "reason": "legacy path, tracked in ROADMAP",
                        }
                    ],
                }
            )
        )
        outcome = apply_baseline(
            result.violations, load_baseline(baseline_path)
        )
        assert outcome.new == []
        assert len(outcome.suppressed) == 1
        assert outcome.stale == []

    def test_stale_baseline_entry_reported(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "function": "synthetic.gone",
                            "rule": "o1-size-loop",
                            "reason": "was fixed",
                        }
                    ],
                }
            )
        )
        outcome = apply_baseline([], load_baseline(baseline_path))
        assert [e.function for e in outcome.stale] == ["synthetic.gone"]

    def test_baseline_requires_reason(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {"function": "synthetic.f", "rule": "o1-size-loop"}
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="needs a reason"):
            load_baseline(baseline_path)

    def test_violation_format_mentions_rule_and_site(self):
        result = lint(
            """
            from repro.lint import o1

            @o1
            def f(pages):
                for page in pages:
                    touch(page)
            """
        )
        text = result.violations[0].format()
        assert "o1-size-loop" in text
        assert "synthetic.f" in text


class TestPersistOutsideTxn:
    def test_apply_without_commit_flags(self):
        result = lint(
            """
            class Fs:
                def sneaky(self, record):
                    self._apply_alloc(record)
            """
        )
        assert [v.rule for v in result.violations] == ["persist-outside-txn"]
        violation = result.violations[0]
        assert violation.declared is None
        assert "persist-outside-txn" in violation.format()
        assert "_apply_alloc" in violation.message

    def test_commit_before_apply_passes(self):
        result = lint(
            """
            class Fs:
                def txn(self, record):
                    self._journal_begin(record)
                    self._journal_commit(record)
                    self._apply_shrink(record)
            """
        )
        assert result.violations == []

    def test_commit_after_apply_still_flags(self):
        result = lint(
            """
            class Fs:
                def backwards(self, record):
                    self._apply_free(record)
                    self._journal_commit(record)
            """
        )
        assert [v.rule for v in result.violations] == ["persist-outside-txn"]

    def test_rule_fires_in_undeclared_functions(self):
        # Unlike the cost-shape rules, no @o1/@complexity declaration is
        # needed: every function is inside the persist contract.
        result = lint(
            """
            def helper(fs, record):
                fs._apply_alloc(record)
            """
        )
        assert [v.rule for v in result.violations] == ["persist-outside-txn"]
        assert result.functions_checked == 0  # not a declared function

    def test_apply_implementations_are_exempt(self):
        result = lint(
            """
            class Fs:
                def _apply_alloc(self, record):
                    self._apply_alloc_extent(record)
            """
        )
        assert result.violations == []

    def test_allow_comment_suppresses(self):
        result = lint(
            """
            class Fs:
                def crash_redo(self, record):
                    # o1: allow(persist-outside-txn) -- committed redo
                    self._apply_free(record)
            """
        )
        assert result.violations == []
        assert result.inline_suppressed == 1

    def test_nested_def_is_its_own_scope(self):
        # The inner function applies without committing; the outer
        # commit must not excuse it.
        result = lint(
            """
            class Fs:
                def outer(self, record):
                    self._journal_commit(record)
                    def inner():
                        self._apply_alloc(record)
                    return inner
            """
        )
        assert [v.rule for v in result.violations] == ["persist-outside-txn"]
