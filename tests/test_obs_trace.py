"""Tracer: span nesting, self-time attribution, ring bounds, export."""

import pytest

from repro.hw.clock import SimClock
from repro.obs.export import (
    chrome_trace,
    load_chrome_trace,
    subsystem_self_times,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import EventKind, Tracer


def make_tracer(**kwargs):
    clock = SimClock()
    return clock, Tracer(clock, **kwargs)


class TestTracerBasics:
    def test_disabled_by_default_and_noops(self):
        _clock, tracer = make_tracer()
        assert not tracer.enabled
        tracer.begin("x", "cpu")
        tracer.instant("y", "cpu")
        tracer.end()
        assert tracer.events() == []
        assert tracer.total_events == 0
        assert tracer.open_spans == 0

    def test_begin_end_records_two_events(self):
        clock, tracer = make_tracer()
        tracer.enable()
        tracer.begin("walk", "paging", pid=3)
        clock.advance(100)
        tracer.end()
        kinds = [e.kind for e in tracer.events()]
        assert kinds == [EventKind.SPAN_BEGIN, EventKind.SPAN_END]
        begin, end = tracer.events()
        assert (begin.name, begin.subsystem, begin.pid, begin.ts_ns) == (
            "walk", "paging", 3, 0,
        )
        assert end.ts_ns == 100

    def test_instant(self):
        clock, tracer = make_tracer()
        tracer.enable()
        clock.advance(7)
        tracer.instant("tlb_evict", "cpu", pid=2, args={"vaddr": "0x0"})
        (event,) = tracer.events()
        assert event.kind is EventKind.INSTANT
        assert event.ts_ns == 7
        assert event.args == {"vaddr": "0x0"}

    def test_current_pid_stamped_when_pid_omitted(self):
        _clock, tracer = make_tracer()
        tracer.enable()
        tracer.current_pid = 42
        tracer.begin("x", "cpu")
        tracer.instant("y", "cpu")
        tracer.end()
        assert all(e.pid == 42 for e in tracer.events())

    def test_end_with_empty_stack_is_noop(self):
        _clock, tracer = make_tracer()
        tracer.enable()
        tracer.end()
        assert tracer.events() == []

    def test_span_context_manager(self):
        clock, tracer = make_tracer()
        tracer.enable()
        with tracer.span("outer", "vm"):
            clock.advance(10)
        assert tracer.open_spans == 0
        assert len(tracer.events()) == 2

    def test_span_context_manager_disabled_is_null(self):
        clock, tracer = make_tracer()
        with tracer.span("outer", "vm"):
            clock.advance(10)
        assert tracer.events() == []

    def test_clear_keeps_enablement(self):
        clock, tracer = make_tracer()
        tracer.enable()
        tracer.instant("x", "cpu")
        tracer.begin("y", "cpu")
        clock.advance(1)
        tracer.end()
        tracer.clear()
        assert tracer.events() == []
        assert tracer.attribution == {}
        assert tracer.total_events == 0
        assert tracer.enabled

    def test_capacity_must_be_positive(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            Tracer(clock, capacity=0)


class TestAttribution:
    def test_flat_span_self_time(self):
        clock, tracer = make_tracer()
        tracer.enable()
        tracer.begin("walk", "paging", pid=1)
        clock.advance(50)
        tracer.end()
        assert tracer.attribution == {(1, "paging"): 50}

    def test_nested_span_subtracts_child_time(self):
        clock, tracer = make_tracer()
        tracer.enable()
        tracer.begin("access", "cpu", pid=1)
        clock.advance(10)
        tracer.begin("walk", "paging", pid=1)
        clock.advance(30)
        tracer.end()
        clock.advance(5)
        tracer.end()
        assert tracer.attribution == {(1, "paging"): 30, (1, "cpu"): 15}
        assert sum(tracer.attribution.values()) == 45

    def test_sibling_children_both_charged_to_parent_child_ns(self):
        clock, tracer = make_tracer()
        tracer.enable()
        tracer.begin("outer", "kernel", pid=0)
        for _ in range(2):
            tracer.begin("inner", "fs", pid=0)
            clock.advance(20)
            tracer.end()
        clock.advance(3)
        tracer.end()
        assert tracer.attribution == {(0, "fs"): 40, (0, "kernel"): 3}

    def test_same_subsystem_different_pids_kept_apart(self):
        clock, tracer = make_tracer()
        tracer.enable()
        for pid in (1, 2):
            tracer.begin("access", "cpu", pid=pid)
            clock.advance(10)
            tracer.end()
        assert tracer.attribution == {(1, "cpu"): 10, (2, "cpu"): 10}

    def test_subsystem_totals_sums_over_pids(self):
        clock, tracer = make_tracer()
        tracer.enable()
        for pid in (1, 2):
            tracer.begin("access", "cpu", pid=pid)
            clock.advance(10)
            tracer.end()
        assert tracer.subsystem_totals() == {"cpu": 20}

    def test_attribution_since_reports_only_growth(self):
        clock, tracer = make_tracer()
        tracer.enable()
        tracer.begin("a", "cpu", pid=1)
        clock.advance(10)
        tracer.end()
        snapshot = dict(tracer.attribution)
        tracer.begin("b", "fs", pid=1)
        clock.advance(7)
        tracer.end()
        assert tracer.attribution_since(snapshot) == {(1, "fs"): 7}

    def test_metrics_receive_span_latency_samples(self):
        clock = SimClock()
        metrics = MetricsRegistry()
        tracer = Tracer(clock, metrics=metrics)
        tracer.enable()
        tracer.begin("page_walk", "paging", pid=1)
        clock.advance(45)
        tracer.end()
        hist = metrics.histogram("page_walk")
        assert hist.count == 1
        assert hist.total == 45


class TestRingBuffer:
    def test_ring_drops_oldest_and_counts(self):
        clock, tracer = make_tracer(capacity=4)
        tracer.enable()
        for i in range(6):
            clock.advance(1)
            tracer.instant(f"e{i}", "cpu")
        assert tracer.total_events == 6
        assert tracer.dropped_events == 2
        assert [e.name for e in tracer.events()] == ["e2", "e3", "e4", "e5"]

    def test_events_since(self):
        clock, tracer = make_tracer()
        tracer.enable()
        tracer.instant("old", "cpu")
        before = tracer.total_events
        clock.advance(1)
        tracer.instant("new", "cpu")
        assert [e.name for e in tracer.events_since(before)] == ["new"]
        assert tracer.events_since(tracer.total_events) == []

    def test_events_since_clipped_after_overflow(self):
        clock, tracer = make_tracer(capacity=2)
        tracer.enable()
        before = tracer.total_events
        for i in range(5):
            clock.advance(1)
            tracer.instant(f"e{i}", "cpu")
        # 5 fresh events but the ring only holds the last 2.
        assert [e.name for e in tracer.events_since(before)] == ["e3", "e4"]


class TestChromeExport:
    def build_events(self):
        clock, tracer = make_tracer()
        tracer.enable()
        tracer.process_names[1] = "app"
        tracer.begin("access", "cpu", pid=1)
        clock.advance(10)
        tracer.begin("walk", "paging", pid=1)
        clock.advance(30)
        tracer.end()
        tracer.instant("tlb_evict", "cpu", pid=1)
        clock.advance(5)
        tracer.end()
        return tracer

    def test_chrome_trace_document_shape(self):
        tracer = self.build_events()
        document = chrome_trace(tracer.events(), tracer.process_names)
        records = document["traceEvents"]
        assert document["displayTimeUnit"] == "ns"
        metadata = [r for r in records if r["ph"] == "M"]
        assert {m["pid"]: m["args"]["name"] for m in metadata} == {
            0: "kernel", 1: "app",
        }
        spans = [r for r in records if r["ph"] in ("B", "E")]
        assert len(spans) == 4
        assert spans[0]["ts"] == 0.0 and spans[0]["cat"] == "cpu"
        instants = [r for r in records if r["ph"] == "i"]
        assert instants[0]["s"] == "t"

    def test_round_trip_and_self_times(self, tmp_path):
        tracer = self.build_events()
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(path, tracer.events(), tracer.process_names)
        loaded = load_chrome_trace(path)
        # metadata records are not trace events
        assert count == len(loaded) + 2
        assert [e.kind for e in loaded] == [e.kind for e in tracer.events()]
        assert [e.ts_ns for e in loaded] == [e.ts_ns for e in tracer.events()]
        assert subsystem_self_times(loaded) == {"cpu": 15, "paging": 30}
        assert subsystem_self_times(loaded) == tracer.subsystem_totals()

    def test_self_times_skip_unmatched_end(self):
        tracer = self.build_events()
        events = tracer.events()[1:]  # drop the opening begin
        totals = subsystem_self_times(events)
        assert totals == {"paging": 30}
