"""Crash-at-any-point exploration and recovery-hardening tests.

The acceptance test for the chaos engine: the Fig-2 create/write/unlink
workload visits every armed fault site, and the recovery oracles hold at
100% of crash points, deterministically reproducible from the seed.
"""

import pytest

from repro.chaos import (
    FaultPlan,
    SITE_ACTIONS,
    explore,
    fig2_workload,
    make_builder,
    recover_machine,
    run_oracles,
)
from repro.chaos.oracles import audit_buddy
from repro.core.o1.zeroing import EagerZeroing
from repro.errors import OutOfMemoryError, SimulatedCrashError
from repro.mem.slab import SlabCache


class TestExplorerAcceptance:
    """The issue's acceptance criterion, as a tier-1 test."""

    SEED = 0

    def test_every_site_visited_and_every_crash_point_recovers(self):
        report = explore(make_builder(seed=self.SEED))
        assert set(report.census) == set(SITE_ACTIONS), (
            "workload must visit every declared fault site; missing: "
            f"{set(SITE_ACTIONS) - set(report.census)}"
        )
        assert report.baseline_problems == []
        assert report.failures == [], report.summary()
        assert report.crash_points == len(report.history) > 0

    def test_census_is_deterministic(self):
        kernel_a, run_a = fig2_workload(seed=self.SEED)
        plan_a = FaultPlan.counting()
        kernel_a.arm_chaos(plan_a)
        run_a()
        kernel_b, run_b = fig2_workload(seed=self.SEED)
        plan_b = FaultPlan.counting()
        kernel_b.arm_chaos(plan_b)
        run_b()
        assert plan_a.history == plan_b.history
        assert plan_a.census() == plan_b.census()

    def test_different_seeds_change_the_workload_not_the_sites(self):
        kernel, run = fig2_workload(seed=99)
        plan = FaultPlan.counting()
        kernel.arm_chaos(plan)
        run()
        assert set(plan.census()) == set(SITE_ACTIONS)


class TestCrashRecovery:
    def _run_with(self, plan, seed=5):
        kernel, run = fig2_workload(seed=seed)
        kernel.arm_chaos(plan)
        crashed = False
        try:
            run()
        except SimulatedCrashError:
            crashed = True
        kernel.disarm_chaos()
        recover_machine(kernel)
        return kernel, crashed

    def test_torn_write_recovers_clean(self):
        kernel, crashed = self._run_with(
            FaultPlan.fault_at_site("fs.write.torn", "torn")
        )
        assert crashed
        assert run_oracles(kernel) == []

    def test_corrupt_journal_record_is_skipped_and_scrubbed(self):
        kernel, crashed = self._run_with(
            FaultPlan.fault_at_site("pmfs.journal.commit.pre", "corrupt")
        )
        assert crashed
        assert kernel.counters.get("journal_corrupt_skipped") >= 1
        # The torn record's extents leaked until the scrub reclaimed them.
        assert kernel.counters.get("recovery_scrub_blocks") >= 1
        assert kernel.pmfs.fsck() == []

    def test_replay_idempotent_after_corruption(self):
        kernel, _ = self._run_with(
            FaultPlan.fault_at_site("pmfs.journal.commit.pre", "corrupt")
        )
        # A second replay (journal already clear) must change nothing.
        before = kernel.pmfs.allocator.free_blocks
        kernel.pmfs.crash()
        assert kernel.pmfs.allocator.free_blocks == before
        assert kernel.pmfs.fsck() == []

    def test_crash_during_recovery_sweep_is_recoverable(self):
        # Crash at the second file of the in-workload recovery sweep,
        # then recover again: the sweep must be idempotent.
        kernel, crashed = self._run_with(
            FaultPlan.crash_at_site("fom.recover.file", nth=1)
        )
        assert crashed
        assert run_oracles(kernel) == []


class TestExhaustionHardening:
    def test_slab_grow_retries_transient_exhaustion(self, kernel):
        slab = SlabCache(
            "t", object_size=128, buddy=kernel.dram_buddy,
            clock=kernel.clock, costs=kernel.costs, counters=kernel.counters,
        )
        kernel.arm_chaos(FaultPlan.fault_at_site("slab.grow", "error"))
        addr = slab.alloc()
        assert addr >= 0
        assert kernel.counters.get("slab_grow_retry") == 1

    def test_zeroing_retries_transient_exhaustion(self, kernel):
        zeroing = EagerZeroing(
            kernel.dram_buddy, kernel.clock, kernel.costs, kernel.counters
        )
        kernel.arm_chaos(FaultPlan.fault_at_site("buddy.alloc", "error"))
        frames = zeroing.take_frames(2)
        assert len(frames) == 2
        assert kernel.counters.get("zero_alloc_retry") == 1
        zeroing.return_frames(frames)
        assert audit_buddy(kernel.dram_buddy) == []

    def test_persistent_buddy_exhaustion_still_raises(self, kernel):
        # Three injected failures exhaust the zeroing retry budget.
        zeroing = EagerZeroing(
            kernel.dram_buddy, kernel.clock, kernel.costs, kernel.counters
        )
        plan = FaultPlan(
            specs=[
                FaultPlan.fault_at_site("buddy.alloc", "error", nth=n).specs[0]
                for n in range(3)
            ]
        )
        kernel.arm_chaos(plan)
        with pytest.raises(OutOfMemoryError):
            zeroing.take_frames(1)

    def test_premap_failure_degrades_to_demand_paging(self, kernel):
        from repro.core.fom import FileOnlyMemory, MapStrategy

        fom = FileOnlyMemory(kernel)
        process = kernel.spawn("p")
        kernel.arm_chaos(FaultPlan.fault_at_site("premap.attach", "error"))
        region = fom.allocate(
            process, 4 * 4096, name="/heap", strategy=MapStrategy.PREMAP
        )
        kernel.disarm_chaos()
        assert region.strategy is MapStrategy.DEMAND
        assert kernel.counters.get("fom_premap_fallback") == 1
        # The degraded mapping still works, one fault at a time.
        paddr = kernel.access(process, region.vaddr, write=True)
        assert paddr >= 0

    def test_shootdown_rebroadcasts_after_interruption(self, smp_kernel):
        process = smp_kernel.spawn("p")
        sys_calls = smp_kernel.syscalls(process)
        va = sys_calls.mmap(4 * 4096)
        smp_kernel.access(process, va, write=True)
        smp_kernel.arm_chaos(FaultPlan.fault_at_site("cpu.shootdown", "error"))
        sys_calls.munmap(va, 4 * 4096)
        assert smp_kernel.counters.get("tlb_shootdown_retry") == 1
        assert smp_kernel.counters.get("tlb_shootdown_ipi") >= 1

    def test_shootdown_gives_up_after_bounded_retries(self, smp_kernel):
        process = smp_kernel.spawn("p")
        sys_calls = smp_kernel.syscalls(process)
        va = sys_calls.mmap(4096)
        smp_kernel.access(process, va, write=True)
        plan = FaultPlan(
            specs=[
                FaultPlan.fault_at_site("cpu.shootdown", "error", nth=n).specs[0]
                for n in range(4)
            ]
        )
        smp_kernel.arm_chaos(plan)
        with pytest.raises(RuntimeError, match="shootdown"):
            sys_calls.munmap(va, 4096)


class TestCliSubcommand:
    def test_chaos_parser_wiring(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["chaos", "--seed", "17"])
        assert args.seed == 17
        assert args.func.__name__ == "_cmd_chaos"
