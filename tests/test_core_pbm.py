"""Physically based mappings: identical VAs, shared subtrees, collisions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pbm import PbmManager
from repro.core.pbm.mapping import PBM_BASE
from repro.errors import MappingError, ProtectionError
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.vm.vma import Protection


@pytest.fixture
def env(aligned_kernel):
    return aligned_kernel, PbmManager(aligned_kernel)


class TestAlgorithmicAddresses:
    def test_va_is_pa_plus_offset(self, env):
        kernel, pbm = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        process = kernel.spawn("p")
        mapping = pbm.map_file(process, inode)
        extent = kernel.pmfs._tree_of(inode).extents()[0]
        assert mapping.vaddr == PBM_BASE + extent.pfn * PAGE_SIZE

    def test_same_va_in_every_process(self, env):
        kernel, pbm = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        mappings = [
            pbm.map_file(kernel.spawn(f"p{i}"), inode) for i in range(4)
        ]
        assert len({m.vaddr for m in mappings}) == 1

    def test_different_files_never_collide(self, env):
        kernel, pbm = env
        process = kernel.spawn("p")
        a = pbm.map_file(process, kernel.pmfs.create("/a", size=2 * MIB))
        b = pbm.map_file(process, kernel.pmfs.create("/b", size=2 * MIB))
        a_range = range(a.vaddr, a.vaddr + a.total_length)
        assert b.vaddr not in a_range
        assert a.vaddr != b.vaddr

    @given(st.lists(st.integers(1, 8), min_size=2, max_size=6))
    @settings(max_examples=15)
    def test_collision_freedom_property(self, sizes_mib):
        """Arbitrary file sets: PBM segments never overlap, because
        physical extents never overlap."""
        kernel = Kernel(
            MachineConfig(
                dram_bytes=256 * MIB, nvm_bytes=2 * GIB,
                pmfs_extent_align_frames=512,
            )
        )
        pbm = PbmManager(kernel)
        process = kernel.spawn("p")
        intervals = []
        for index, size in enumerate(sizes_mib):
            inode = kernel.pmfs.create(f"/f{index}", size=size * MIB)
            mapping = pbm.map_file(process, inode)
            for segment in mapping.segments:
                intervals.append((segment.vaddr, segment.vaddr + segment.length))
        intervals.sort()
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2


class TestSharedSubtrees:
    def test_first_map_builds_second_links(self, env):
        kernel, pbm = env
        inode = kernel.pmfs.create("/f", size=4 * MIB)
        a, b = kernel.spawn("a"), kernel.spawn("b")
        with kernel.measure() as first:
            pbm.map_file(a, inode)
        with kernel.measure() as second:
            pbm.map_file(b, inode)
        assert first.counter_delta.get("pte_write", 0) >= 1024
        assert second.counter_delta.get("pte_write", 0) <= 2 + 2  # links only
        assert kernel.counters.get("pbm_subtree_hit") == 1

    def test_both_processes_translate_correctly(self, env):
        kernel, pbm = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        a, b = kernel.spawn("a"), kernel.spawn("b")
        map_a = pbm.map_file(a, inode)
        map_b = pbm.map_file(b, inode)
        pa = kernel.access(a, map_a.vaddr + 9 * PAGE_SIZE)
        pb = kernel.access(b, map_b.vaddr + 9 * PAGE_SIZE)
        assert pa == pb  # same physical page through shared tables

    def test_no_faults_after_pbm_map(self, env):
        kernel, pbm = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        process = kernel.spawn("p")
        mapping = pbm.map_file(process, inode)
        kernel.access_range(process, mapping.vaddr, 2 * MIB)
        assert kernel.counters.get("fault_trap") == 0

    def test_permission_variants_use_distinct_subtrees(self, env):
        kernel, pbm = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        a, b = kernel.spawn("a"), kernel.spawn("b")
        pbm.map_file(a, inode, prot=Protection.rw())
        pbm.map_file(b, inode, prot=Protection.READ)
        assert pbm.subtrees.cached_extents == 2
        with pytest.raises(ProtectionError):
            kernel.access(b, PBM_BASE + kernel.pmfs._tree_of(inode).extents()[0].pfn * PAGE_SIZE, write=True)

    def test_unaligned_extent_falls_back_to_private(self):
        kernel = Kernel(
            MachineConfig(dram_bytes=256 * MIB, nvm_bytes=1 * GIB)
        )  # no extent alignment
        pbm = PbmManager(kernel)
        kernel.nvm_allocator.alloc_extent(3)  # force misalignment
        inode = kernel.pmfs.create("/u", size=2 * MIB)
        process = kernel.spawn("p")
        mapping = pbm.map_file(process, inode)
        assert mapping.shared_window_count == 0
        assert kernel.counters.get("pbm_private_pages") == 512
        kernel.access(process, mapping.vaddr)  # still translates


class TestUnmap:
    def test_unmap_unlinks_and_clears_vmas(self, env):
        kernel, pbm = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        process = kernel.spawn("p")
        mapping = pbm.map_file(process, inode)
        kernel.access(process, mapping.vaddr)
        pbm.unmap(mapping)
        assert process.space.vmas == []
        with pytest.raises(ProtectionError):
            kernel.access(process, mapping.vaddr)

    def test_shared_subtree_survives_one_unmap(self, env):
        kernel, pbm = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        a, b = kernel.spawn("a"), kernel.spawn("b")
        map_a = pbm.map_file(a, inode)
        map_b = pbm.map_file(b, inode)
        pbm.unmap(map_a)
        kernel.access(b, map_b.vaddr)  # b unaffected

    def test_empty_file_rejected(self, env):
        kernel, pbm = env
        inode = kernel.pmfs.create("/empty")
        with pytest.raises(MappingError):
            pbm.map_file(kernel.spawn("p"), inode)


class TestExtentInvalidation:
    def test_unlink_drops_cached_subtrees(self, env):
        kernel, pbm = env
        kernel.pmfs.create("/doomed", size=2 * MIB)
        process = kernel.spawn("p")
        mapping = pbm.map_file(process, kernel.pmfs.lookup("/doomed"))
        pbm.unmap(mapping)
        # The unmap keeps the subtree warm for the next mapper...
        assert pbm.subtrees.cached_extents > 0
        # ...but freeing the extents must drop it: the frames can be
        # reallocated to a different file, and a cached subtree would
        # hand the new owner's data to whoever maps the old path.
        kernel.pmfs.unlink("/doomed")
        assert pbm.subtrees.cached_extents == 0

    def test_unlink_of_unrelated_file_keeps_cache(self, env):
        kernel, pbm = env
        kernel.pmfs.create("/keep", size=2 * MIB)
        kernel.pmfs.create("/other", size=2 * MIB)
        process = kernel.spawn("p")
        pbm.map_file(process, kernel.pmfs.lookup("/keep"))
        cached = pbm.subtrees.cached_extents
        assert cached > 0
        kernel.pmfs.unlink("/other")
        assert pbm.subtrees.cached_extents == cached
