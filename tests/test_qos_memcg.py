"""MemCg hierarchy unit tests: charging, watermarks, PSI, OOM policies."""

from __future__ import annotations

import pytest

from repro.qos.memcg import (
    OOM_POLICIES,
    CgroupError,
    MemCg,
    PsiTracker,
    victim_largest_rss,
    victim_oldest,
    victim_priority,
)


class _FakeProcess:
    """Stand-in with just the surface the policies touch."""

    def __init__(self, pid: int, rss: int) -> None:
        self.pid = pid
        self._rss = rss
        self.space = self

    def resident_pages(self) -> int:
        return self._rss


class TestHierarchy:
    def test_lineage_is_self_then_ancestors(self):
        root = MemCg("root")
        mid = MemCg("mid", parent=root)
        leaf = MemCg("leaf", parent=mid)
        assert leaf.lineage == (leaf, mid, root)
        assert leaf.depth == 2

    def test_depth_cap_enforced(self):
        node = MemCg("d0")
        for depth in range(1, MemCg.MAX_DEPTH + 1):
            node = MemCg(f"d{depth}", parent=node)
        with pytest.raises(CgroupError, match="depth cap"):
            MemCg("too-deep", parent=node)

    def test_high_must_not_exceed_max(self):
        with pytest.raises(CgroupError, match="must not exceed"):
            MemCg("bad", high=10, max_frames=5)

    def test_unknown_policy_rejected(self):
        with pytest.raises(CgroupError, match="oom_policy"):
            MemCg("bad", oom_policy="dartboard")

    def test_contains_covers_subtree_only(self):
        root = MemCg("root")
        a = MemCg("a", parent=root)
        b = MemCg("b", parent=root)
        leaf = MemCg("leaf", parent=a)
        assert a.contains(leaf)
        assert root.contains(leaf)
        assert not b.contains(leaf)
        assert not leaf.contains(a)

    def test_subtree_pids_sweeps_descendants(self):
        root = MemCg("root")
        a = MemCg("a", parent=root)
        leaf = MemCg("leaf", parent=a)
        root.pids.add(1)
        a.pids.add(2)
        leaf.pids.add(3)
        assert sorted(a.subtree_pids()) == [2, 3]
        assert sorted(root.subtree_pids()) == [1, 2, 3]


class TestCharging:
    def test_charge_lands_on_every_ancestor(self):
        root = MemCg("root")
        leaf = MemCg("leaf", parent=root)
        leaf.charge(3)
        assert leaf.usage_frames == 3
        assert root.usage_frames == 3
        leaf.uncharge(3)
        assert leaf.usage_frames == 0
        assert root.usage_frames == 0

    def test_uncharge_floors_at_zero(self):
        cg = MemCg("cg")
        cg.charge(1)
        cg.uncharge(5)
        assert cg.usage_frames == 0

    def test_peak_tracks_high_water(self):
        cg = MemCg("cg")
        cg.charge(4)
        cg.uncharge(2)
        cg.charge(1)
        assert cg.usage_frames == 3
        assert cg.peak_frames == 4

    def test_charge_reports_deepest_breach_first(self):
        root = MemCg("root", high=100)
        leaf = MemCg("leaf", parent=root, high=2)
        max_breach, high_breach = leaf.charge(3)
        assert max_breach is None
        assert high_breach is leaf

    def test_max_breach_wins_over_high(self):
        cg = MemCg("cg", high=2, max_frames=4)
        max_breach, high_breach = cg.charge(5)
        assert max_breach is cg
        assert high_breach is None
        assert cg.over_max and cg.over_high

    def test_uncharge_below_high_resets_throttle_streak(self):
        cg = MemCg("cg", high=4)
        cg.charge(6)
        cg.throttle_streak = 3
        cg.uncharge(1)  # still over high: streak keeps growing
        assert cg.throttle_streak == 3
        cg.uncharge(2)  # back within the watermark: backoff restarts
        assert cg.throttle_streak == 0

    def test_unlimited_cgroup_never_breaches(self):
        cg = MemCg("cg")
        assert cg.charge(10_000) == (None, None)
        assert not cg.over_high and not cg.over_max


class TestPsi:
    def test_totals_accumulate_some_and_full(self):
        psi = PsiTracker()
        psi.record(1_000, 500, full=False)
        psi.record(2_000, 300, full=True)
        assert psi.some_total_ns == 800
        assert psi.full_total_ns == 300

    def test_avg10_is_fraction_of_window(self):
        psi = PsiTracker()
        stall = PsiTracker.WINDOW_NS // 10
        psi.record(stall, stall, full=True)
        some, full = psi.avg10(stall)
        assert some == pytest.approx(0.1, rel=0.02)
        assert full == pytest.approx(0.1, rel=0.02)

    def test_old_windows_age_out(self):
        psi = PsiTracker()
        psi.record(1_000, 1_000_000, full=True)
        # Three windows later the stall no longer counts toward avg10
        # (but the lifetime totals keep it).
        later = 3 * PsiTracker.WINDOW_NS + 1
        some, full = psi.avg10(later)
        assert some == 0.0 and full == 0.0
        assert psi.full_total_ns == 1_000_000


class TestOomPolicies:
    def test_policy_table_is_complete(self):
        assert set(OOM_POLICIES) == {"largest_rss", "oldest", "priority"}

    def test_largest_rss_picks_biggest(self):
        a, b = _FakeProcess(1, rss=10), _FakeProcess(2, rss=50)
        assert victim_largest_rss([a, b], lambda pid: None) is b

    def test_largest_rss_ties_break_to_youngest(self):
        a, b = _FakeProcess(1, rss=10), _FakeProcess(2, rss=10)
        assert victim_largest_rss([a, b], lambda pid: None) is b

    def test_oldest_picks_smallest_pid(self):
        a, b = _FakeProcess(1, rss=10), _FakeProcess(2, rss=50)
        assert victim_oldest([a, b], lambda pid: None) is a

    def test_priority_outranks_rss(self):
        low = MemCg("low", oom_priority=0)
        high = MemCg("high-prio", oom_priority=10)
        a, b = _FakeProcess(1, rss=100), _FakeProcess(2, rss=1)
        cg_of = {1: low, 2: high}.get
        assert victim_priority([a, b], cg_of) is b

    def test_priority_degrades_to_rss_within_band(self):
        cg = MemCg("band", oom_priority=5)
        a, b = _FakeProcess(1, rss=100), _FakeProcess(2, rss=1)
        cg_of = {1: cg, 2: cg}.get
        assert victim_priority([a, b], cg_of) is a
