"""Shared fixtures: small, fast machines for unit and integration tests."""

from __future__ import annotations

import pytest

from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.kernel import Kernel, MachineConfig
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion, PhysicalMemory
from repro.units import GIB, MIB


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def counters() -> EventCounters:
    return EventCounters()


@pytest.fixture
def costs() -> CostModel:
    return CostModel()


@pytest.fixture
def dram_region() -> MemoryRegion:
    return MemoryRegion(start=0, size=256 * MIB, tech=MemoryTechnology.DRAM, name="t-dram")


@pytest.fixture
def buddy(dram_region, clock, costs, counters) -> BuddyAllocator:
    return BuddyAllocator(dram_region, clock=clock, costs=costs, counters=counters)


@pytest.fixture
def kernel() -> Kernel:
    """Small default machine: 512 MiB DRAM + 1 GiB NVM."""
    return Kernel(MachineConfig(dram_bytes=512 * MIB, nvm_bytes=1 * GIB))


@pytest.fixture
def range_kernel() -> Kernel:
    """Machine with range-translation hardware and aligned PMFS extents."""
    return Kernel(
        MachineConfig(
            dram_bytes=512 * MIB,
            nvm_bytes=2 * GIB,
            range_hardware=True,
            pmfs_extent_align_frames=512,
        )
    )


@pytest.fixture
def aligned_kernel() -> Kernel:
    """Machine whose PMFS extents are 2 MiB-aligned (for PBM/premap)."""
    return Kernel(
        MachineConfig(
            dram_bytes=512 * MIB,
            nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
