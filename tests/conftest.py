"""Shared fixtures and hypothesis profiles for the test suite.

Hypothesis settings live here, not on individual tests: one
``settings.register_profile`` per use case, selected with
``--hypothesis-profile=<name>`` (the CI workflow passes ``ci``).

* ``dev`` (default) — no deadline (the simulator advances a virtual
  clock; wall-time deadlines only add flakiness), modest example count.
* ``ci`` — like dev but ``derandomize=True``: the example sequence is
  fixed, so a CI failure always reproduces locally with the same flag.
* ``heavy`` — 10x examples for the scheduled (cron) deep run.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.kernel import Kernel, MachineConfig
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion, PhysicalMemory
from repro.units import GIB, MIB

_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=100, **_COMMON)
settings.register_profile(
    "ci", max_examples=100, derandomize=True, **_COMMON
)
settings.register_profile("heavy", max_examples=1000, **_COMMON)
settings.load_profile("dev")

if os.environ.get("REPRO_SANITIZE"):
    # Sanitizer-armed tier-1: every Kernel built anywhere in the suite
    # gets the full shadow-state sanitizer suite in halt mode, so any
    # translation/frame/persist incoherence fails the test that caused
    # it.  Opt-in via the environment so the plain run measures the
    # unarmed (single getattr) hot paths.
    from repro.sanitize import SanitizerSuite

    _orig_kernel_init = Kernel.__init__

    def _armed_kernel_init(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        _orig_kernel_init(self, *args, **kwargs)
        self.arm_sanitizers(SanitizerSuite())

    Kernel.__init__ = _armed_kernel_init  # type: ignore[method-assign]

if os.environ.get("REPRO_RAS"):
    # RAS-armed tier-1: every Kernel gets the RAS engine with a *clean*
    # fault model (no sampled faults), so the whole suite runs through
    # the armed media-check, degradation and file-IO hooks without any
    # injected faults perturbing clocks or killing processes.  Fault
    # behaviour itself is covered by the dedicated test_ras_* modules.
    from repro.ras import MediaFaultModel

    _plain_kernel_init = Kernel.__init__

    def _ras_kernel_init(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        _plain_kernel_init(self, *args, **kwargs)
        self.arm_ras(model=MediaFaultModel(seed=0, faults_per_bind=0))

    Kernel.__init__ = _ras_kernel_init  # type: ignore[method-assign]

if os.environ.get("REPRO_QOS"):
    # QoS-armed tier-1: every Kernel gets the memory controller with only
    # the limitless root cgroup, so the whole suite runs through the armed
    # charge/uncharge hooks while no watermark can ever breach.  The
    # pressure paths are breach-only, so every simulated figure must come
    # out bit-identical to the plain run; this mode exists to prove that.
    _unqos_kernel_init = Kernel.__init__

    def _qos_kernel_init(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        _unqos_kernel_init(self, *args, **kwargs)
        self.arm_qos()

    Kernel.__init__ = _qos_kernel_init  # type: ignore[method-assign]

if os.environ.get("REPRO_PROFILE"):
    # Profiler-armed tier-1: every Kernel gets a WallProfiler (which also
    # enables tracing, so spans carry wall-time samples).  The profiler
    # never touches the simulated clock, so every simulated figure —
    # including the goldens — must come out bit-identical to the plain
    # run; this mode exists to prove exactly that.
    from repro.perf import WallProfiler

    _bare_kernel_init = Kernel.__init__

    def _profiled_kernel_init(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        _bare_kernel_init(self, *args, **kwargs)
        self.arm_profiler(WallProfiler())

    Kernel.__init__ = _profiled_kernel_init  # type: ignore[method-assign]


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def counters() -> EventCounters:
    return EventCounters()


@pytest.fixture
def costs() -> CostModel:
    return CostModel()


@pytest.fixture
def dram_region() -> MemoryRegion:
    return MemoryRegion(start=0, size=256 * MIB, tech=MemoryTechnology.DRAM, name="t-dram")


@pytest.fixture
def buddy(dram_region, clock, costs, counters) -> BuddyAllocator:
    return BuddyAllocator(dram_region, clock=clock, costs=costs, counters=counters)


@pytest.fixture
def kernel() -> Kernel:
    """Small default machine: 512 MiB DRAM + 1 GiB NVM."""
    return Kernel(MachineConfig(dram_bytes=512 * MIB, nvm_bytes=1 * GIB))


@pytest.fixture
def smp_kernel() -> Kernel:
    """Four-core machine: TLB invalidations broadcast shootdown IPIs."""
    return Kernel(MachineConfig(dram_bytes=512 * MIB, nvm_bytes=1 * GIB, cpus=4))


@pytest.fixture
def range_kernel() -> Kernel:
    """Machine with range-translation hardware and aligned PMFS extents."""
    return Kernel(
        MachineConfig(
            dram_bytes=512 * MIB,
            nvm_bytes=2 * GIB,
            range_hardware=True,
            pmfs_extent_align_frames=512,
        )
    )


@pytest.fixture
def aligned_kernel() -> Kernel:
    """Machine whose PMFS extents are 2 MiB-aligned (for PBM/premap)."""
    return Kernel(
        MachineConfig(
            dram_bytes=512 * MIB,
            nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
