"""AllocSan: repro.lint.alloc — the static allocation-shape prong.

Covers the shape classifier, the lattice scaling, interprocedural
propagation over the call graph, cold-call mechanics, the hot-closure
gate, the never-ratchetable baseline rule, the ``alloc`` section of
``lint_report.json`` (schema v3) — and the mutants the pass exists to
catch, pinned against the real tree.
"""

import json
import re
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.lint.alloc import (
    ALLOC_ALLOWABLE_RULES,
    ALLOC_CONTROLS,
    DEFAULT_ALLOC_BASELINE,
    RULE_ALLOC_CONTROL_MISSING,
    RULE_ALLOC_EXCEEDS,
    RULE_ALLOC_HOT,
    AllocClass,
    _scale,
    load_alloc_baseline,
    run_alloc,
)
from repro.lint.astcheck import lint_tree
from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.report import REPORT_VERSION, build_report, render_text

REPRO_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def make_pkg(tmp_path: Path, files: dict) -> Path:
    """Materialise a throwaway package for the analysis to chew on."""
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        path = pkg / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return pkg


def alloc(pkg: Path):
    return run_alloc(pkg, package="pkg")


def real_findings(result):
    """Findings minus the control-missing noise a non-repro tree makes.

    The planted control lives in ``repro.lint.controls``; a throwaway
    ``pkg`` tree cannot contain it, so every tmp-package run reports
    ``alloc-control-missing`` — correct behaviour, filtered here.
    """
    return [f for f in result.findings if f.rule != RULE_ALLOC_CONTROL_MISSING]


# ---------------------------------------------------------------------------
# The lattice
# ---------------------------------------------------------------------------
class TestLattice:
    def test_order(self):
        assert (
            AllocClass.NONE
            < AllocClass.BOUNDED
            < AllocClass.PER_ELEMENT
            < AllocClass.UNBOUNDED
        )

    def test_none_never_scales(self):
        assert _scale(AllocClass.NONE, 3) is AllocClass.NONE

    def test_bounded_in_one_loop_is_per_element(self):
        assert _scale(AllocClass.BOUNDED, 1) is AllocClass.PER_ELEMENT

    def test_anything_two_deep_is_unbounded(self):
        assert _scale(AllocClass.BOUNDED, 2) is AllocClass.UNBOUNDED
        assert _scale(AllocClass.PER_ELEMENT, 1) is AllocClass.UNBOUNDED


# ---------------------------------------------------------------------------
# Shape classification, via the declared-vs-summary judgment
# ---------------------------------------------------------------------------
class TestShapes:
    @pytest.mark.parametrize("body,needle", [
        ("return [x, x]", "list"),
        ("return {'k': x}", "dict"),
        ("return {x}", "set"),
        ("return (x, x)", "tuple"),
        ("return [i for i in x]", "comprehension"),
        ("return (i for i in x)", "generator"),
        ("return f'{x}'", "f-string"),
        ("return 'a' + str(x)", ""),
        ("return x[1:3]", "slice"),
        ("return sorted(x)", "materializes"),
        ("return x.items()", "materializes"),
    ])
    def test_shape_breaks_allocfree(self, tmp_path, body, needle):
        pkg = make_pkg(tmp_path, {"mod.py": f"""
            from repro.lint import allocfree

            @allocfree
            def hot(x):
                {body}
        """})
        findings = real_findings(alloc(pkg))
        assert [f.rule for f in findings] == [RULE_ALLOC_EXCEEDS]
        assert findings[0].function == "pkg.mod.hot"
        assert findings[0].chain, "exceeds finding must carry a witness"
        assert needle in findings[0].chain[-1].note

    def test_arithmetic_is_allocation_free(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(a, b):
                if a < 0:
                    raise ValueError(f"negative {a}")
                return a + b * 3
        """})
        # The f-string lives in a raise: terminal, excused by policy.
        assert real_findings(alloc(pkg)) == []

    def test_nested_def_is_a_closure_shape(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(x):
                def inner():
                    return x
                return inner
        """})
        findings = real_findings(alloc(pkg))
        assert [f.rule for f in findings] == [RULE_ALLOC_EXCEEDS]
        assert "function object" in findings[0].chain[-1].note

    def test_allocbound_tolerates_bounded_shapes(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocbound

            @allocbound(2)
            def fill(x):
                return {"key": x}
        """})
        assert real_findings(alloc(pkg)) == []

    def test_bounded_shape_in_unbounded_loop_breaks_allocbound(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocbound

            @allocbound(1)
            def fill(items):
                out = None
                for item in items:
                    out = {"key": item}
                return out
        """})
        findings = real_findings(alloc(pkg))
        assert [f.rule for f in findings] == [RULE_ALLOC_EXCEEDS]
        assert "per-element" in findings[0].message

    def test_constant_bounded_loop_keeps_bounded(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocbound

            @allocbound(4)
            def fill(x):
                out = None
                for i in range(4):
                    out = {"key": i}
                return out
        """})
        assert real_findings(alloc(pkg)) == []

    def test_inline_allow_suppresses_shape(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(x):
                return [x]  # alloc: allow(list-display) -- interned, measured free
        """})
        result = alloc(pkg)
        assert real_findings(result) == []
        assert result.stale_suppressions == []

    def test_dead_allow_is_a_stale_suppression(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(x):
                # alloc: allow(list-display) -- obsolete: the list is long gone
                return x
        """})
        result = alloc(pkg)
        assert real_findings(result) == []
        (stale,) = result.stale_suppressions
        assert stale.rules == ("list-display",)
        assert stale.path.endswith("mod.py")


# ---------------------------------------------------------------------------
# Interprocedural propagation
# ---------------------------------------------------------------------------
class TestPropagation:
    def test_undeclared_helper_propagates_to_caller(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(x):
                return helper(x)

            def helper(x):
                return [i for i in x]
        """})
        findings = real_findings(alloc(pkg))
        assert [f.function for f in findings] == ["pkg.mod.hot"]
        assert any("helper" in hop.fid for hop in findings[0].chain)

    def test_declared_callee_is_cut_at_its_declaration(self, tmp_path):
        """The caller trusts the callee's decorator, not its body — the
        callee's own judgment (a separate finding) polices the body."""
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocbound, allocfree

            @allocfree
            def hot(x):
                return probe(x)

            @allocbound(1)
            def probe(x):
                return [i for i in x]
        """})
        findings = real_findings(alloc(pkg))
        by_function = {f.function for f in findings}
        # probe exceeds its own bound; hot exceeds because a BOUNDED
        # callee is still above allocation-free.
        assert by_function == {"pkg.mod.hot", "pkg.mod.probe"}

    def test_cold_call_excludes_callee(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(x, miss):
                if miss:
                    # alloc: allow(cold-call) -- refill path, off steady state
                    return refill(x)
                return x

            def refill(x):
                return [i for i in x]
        """})
        result = alloc(pkg)
        assert real_findings(result) == []
        assert result.stale_suppressions == []

    def test_cold_call_on_allocation_free_callee_is_stale(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(x):
                # alloc: allow(cold-call) -- obsolete: helper stopped allocating
                return helper(x)

            def helper(x):
                return x
        """})
        result = alloc(pkg)
        assert real_findings(result) == []
        (stale,) = result.stale_suppressions
        assert stale.rules == ("cold-call",)

    def test_recursive_undeclared_cycle_is_unbounded(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(x):
                return ping(x)

            def ping(x):
                return pong(x)

            def pong(x):
                return ping(x)
        """})
        findings = real_findings(alloc(pkg))
        assert [f.function for f in findings] == ["pkg.mod.hot"]
        assert "unbounded" in findings[0].message


# ---------------------------------------------------------------------------
# The hot closure
# ---------------------------------------------------------------------------
class TestHotClosure:
    def test_undeclared_allocating_reachable_function_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            class Tlb:
                def lookup(self, vpn):
                    return self._probe(vpn)

                def _probe(self, vpn):
                    return [vpn]
        """})
        result = alloc(pkg)
        findings = real_findings(result)
        # Both the undeclared entry (which inherits the summary) and
        # the allocating helper are flagged.
        assert {(f.function, f.rule) for f in findings} == {
            ("pkg.mod.Tlb.lookup", RULE_ALLOC_HOT),
            ("pkg.mod.Tlb._probe", RULE_ALLOC_HOT),
        }
        probe = next(f for f in findings if f.qualname == "Tlb._probe")
        # The chain walks entry -> callee -> witness.
        assert probe.chain[0].fid == "pkg.mod.Tlb.lookup"
        assert result.entries == ["pkg.mod.Tlb.lookup"]
        assert result.hot_reachable == 2

    def test_declaring_the_function_moves_the_judgment(self, tmp_path):
        """Once declared, the hot rule yields to exceeds-declared — the
        finding becomes ratchetable, which is the entire point of the
        two-rule split."""
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocbound

            class Tlb:
                @allocbound(1)
                def lookup(self, vpn):
                    return self._probe(vpn)

                @allocbound(1)
                def _probe(self, vpn):
                    return [vpn]
        """})
        findings = real_findings(alloc(pkg))
        assert [f.rule for f in findings] == []

    def test_allocation_free_closure_is_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            class Tlb:
                def lookup(self, vpn):
                    return self._probe(vpn + 1)

                def _probe(self, vpn):
                    return vpn
        """})
        assert real_findings(alloc(pkg)) == []


# ---------------------------------------------------------------------------
# Baseline: ratchet for exceeds, never for the hot closure
# ---------------------------------------------------------------------------
class TestAllocBaseline:
    def _exceeding_pkg(self, tmp_path):
        return make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(x):
                return [x]
        """})

    def test_exceeds_round_trip(self, tmp_path):
        result = alloc(self._exceeding_pkg(tmp_path))
        (finding,) = real_findings(result)
        baseline_path = tmp_path / "alloc_baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "function": finding.function,
                "rule": finding.rule,
                "reason": "pinned for the round-trip test",
            }],
        }))
        entries = load_alloc_baseline(baseline_path)
        outcome = apply_baseline(result.findings, entries)
        assert outcome.suppressed == [finding]
        assert outcome.stale == []

    def test_hot_rule_rejected(self, tmp_path):
        baseline_path = tmp_path / "alloc_baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "function": "repro.hw.tlb.Tlb._probe",
                "rule": RULE_ALLOC_HOT,
                "reason": "trying to ratchet the unratchetable",
            }],
        }))
        with pytest.raises(ValueError, match="cannot be baselined"):
            load_alloc_baseline(baseline_path)

    def test_control_missing_rule_rejected(self, tmp_path):
        baseline_path = tmp_path / "alloc_baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "function": "repro.lint.controls.control_allocfree_hidden_comprehension",
                "rule": RULE_ALLOC_CONTROL_MISSING,
                "reason": "burying a broken pass",
            }],
        }))
        with pytest.raises(ValueError, match="cannot be baselined"):
            load_alloc_baseline(baseline_path)

    def test_unknown_rule_rejected(self, tmp_path):
        baseline_path = tmp_path / "alloc_baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "function": "pkg.mod.f",
                "rule": "alloc-not-a-rule",
                "reason": "typo",
            }],
        }))
        with pytest.raises(ValueError, match="unknown rule"):
            load_baseline(baseline_path, known_rules=ALLOC_ALLOWABLE_RULES)

    def test_stale_entry_detected(self, tmp_path):
        result = alloc(self._exceeding_pkg(tmp_path))
        baseline_path = tmp_path / "alloc_baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "function": "pkg.mod.gone",
                "rule": RULE_ALLOC_EXCEEDS,
                "reason": "the function this pinned was deleted",
            }],
        }))
        entries = load_alloc_baseline(baseline_path)
        outcome = apply_baseline(result.findings, entries)
        assert [e.function for e in outcome.stale] == ["pkg.mod.gone"]

    def test_shipped_baseline_is_empty(self):
        document = json.loads(DEFAULT_ALLOC_BASELINE.read_text())
        assert document["entries"] == []


# ---------------------------------------------------------------------------
# Report: schema v3
# ---------------------------------------------------------------------------
class TestAllocReport:
    def _fixture(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import allocfree

            @allocfree
            def hot(x):
                return helper(x)

            def helper(x):
                return [i for i in x]
        """})
        return lint_tree(pkg), alloc(pkg)

    def test_alloc_section_schema(self, tmp_path):
        intra, result = self._fixture(tmp_path)
        outcome = apply_baseline(intra.violations, [])
        alloc_outcome = apply_baseline(result.findings, [])
        report = build_report(
            intra, outcome, alloc=result, alloc_outcome=alloc_outcome
        )
        assert report["version"] == REPORT_VERSION == 3
        section = report["alloc"]
        assert set(section) == {
            "entries", "files", "functions", "hot_reachable",
            "declared_allocfree", "declared_allocbound", "findings",
            "baseline_suppressed", "stale_baseline_entries",
            "controls_verified", "stale_suppressions",
        }
        (finding,) = [
            f for f in section["findings"] if f["rule"] == RULE_ALLOC_EXCEEDS
        ]
        assert finding["function"] == "pkg.mod.hot"
        assert finding["chain"], "chain must be serialised"
        hop = finding["chain"][-1]
        assert set(hop) == {"function", "path", "line", "note"}

    def test_allocfit_results_serialised(self, tmp_path):
        from repro.lint.allocfit import AllocFitResult

        intra, result = self._fixture(tmp_path)
        outcome = apply_baseline(intra.violations, [])
        fit = AllocFitResult(
            name="access.tlb_hit", calls=4096, net_bytes=164,
            per_call_bytes=0.04, gc_delta=(3, 0, 0), expect_growth=False,
            grew=False, uncertified=(), ok=True, note="",
        )
        report = build_report(
            intra, outcome, alloc=result, allocfit_results=[fit]
        )
        (row,) = report["alloc"]["allocfit"]
        assert row["name"] == "access.tlb_hit"
        assert row["ok"] is True
        assert row["gc_delta"] == [3, 0, 0]
        json.dumps(report)  # the whole document must be serialisable

    def test_render_text_shows_alloc_section(self, tmp_path):
        intra, result = self._fixture(tmp_path)
        outcome = apply_baseline(intra.violations, [])
        alloc_outcome = apply_baseline(result.findings, [])
        text = render_text(
            intra, outcome, alloc=result, alloc_outcome=alloc_outcome
        )
        assert "o1 alloc:" in text
        assert "FINDING" in text
        assert "pkg.mod.helper" in text  # the witness hop, not just the root


# ---------------------------------------------------------------------------
# The real tree: clean gate, verified control, mutant detection
# ---------------------------------------------------------------------------
class TestRealTree:
    @pytest.fixture(scope="class")
    def real_alloc(self):
        return run_alloc(REPRO_ROOT)

    def test_tree_is_clean_with_empty_baseline(self, real_alloc):
        assert real_alloc.findings == []

    def test_no_stale_suppressions(self, real_alloc):
        assert real_alloc.stale_suppressions == []

    def test_planted_control_fires_with_chain(self, real_alloc):
        fired = {(f.function, f.rule) for f in real_alloc.controls_verified}
        assert fired == set(ALLOC_CONTROLS)
        for finding in real_alloc.controls_verified:
            assert finding.chain, (
                f"control {finding.function} must carry its witness chain"
            )

    def test_entries_are_the_four_hot_access_points(self, real_alloc):
        assert set(real_alloc.entries) == {
            "repro.kernel.kernel.Kernel.access",
            "repro.kernel.kernel.Kernel.access_range",
            "repro.hw.cpu.Cpu.access",
            "repro.hw.tlb.Tlb.lookup",
        }

    def test_closure_is_declared_and_nontrivial(self, real_alloc):
        assert real_alloc.hot_reachable >= 15
        assert real_alloc.declared_allocfree >= 10
        assert real_alloc.declared_allocbound >= 5

    def test_comprehension_in_certified_hot_fn_goes_red(self, tmp_path):
        """Mutant: plant a list comprehension in @allocfree
        SimClock.advance — the certified hot closure must go red."""
        mutant_root = tmp_path / "repro"
        shutil.copytree(REPRO_ROOT, mutant_root)
        target = mutant_root / "hw" / "clock.py"
        source = target.read_text()
        mutated = source.replace(
            "        self._now += ns\n",
            "        self._now += ns\n"
            "        _shadow = [v for v in (ns, self._now)]\n",
        )
        assert mutated != source, "mutation target not found"
        target.write_text(mutated)
        result = run_alloc(mutant_root)
        flagged = [
            f for f in result.findings if f.rule == RULE_ALLOC_EXCEEDS
        ]
        assert any(
            f.function == "repro.hw.clock.SimClock.advance" for f in flagged
        ), f"expected SimClock.advance flagged, got {[f.function for f in flagged]}"

    def test_undeclaring_a_hot_allocator_goes_red(self, tmp_path):
        """Mutant: strip @allocbound from Cpu.access_range while it
        still allocates — the unratchetable hot rule must fire."""
        mutant_root = tmp_path / "repro"
        shutil.copytree(REPRO_ROOT, mutant_root)
        target = mutant_root / "hw" / "cpu.py"
        source = target.read_text()
        mutated = re.sub(
            r"    @allocbound\(1,[^)]*\)\n(    def access_range)",
            r"\1",
            source,
        )
        assert mutated != source, "mutation target not found"
        target.write_text(mutated)
        result = run_alloc(mutant_root)
        flagged = [f for f in result.findings if f.rule == RULE_ALLOC_HOT]
        assert any(
            f.function == "repro.hw.cpu.Cpu.access_range" for f in flagged
        ), f"expected Cpu.access_range flagged, got {[f.function for f in flagged]}"
