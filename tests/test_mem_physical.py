"""Physical memory regions and address lookup."""

import pytest

from repro.errors import ConfigurationError, InvalidAddressError
from repro.hw.costmodel import MemoryTechnology
from repro.mem.physical import MemoryRegion, PhysicalMemory
from repro.units import GIB, MIB, PAGE_SIZE


class TestMemoryRegion:
    def test_geometry(self):
        region = MemoryRegion(start=MIB, size=2 * MIB, tech=MemoryTechnology.DRAM)
        assert region.end == 3 * MIB
        assert region.first_pfn == MIB // PAGE_SIZE
        assert region.frame_count == 2 * MIB // PAGE_SIZE

    def test_contains_boundaries(self):
        region = MemoryRegion(start=0, size=MIB, tech=MemoryTechnology.DRAM)
        assert region.contains(0)
        assert region.contains(MIB - 1)
        assert not region.contains(MIB)

    def test_unaligned_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryRegion(start=100, size=MIB, tech=MemoryTechnology.DRAM)
        with pytest.raises(ConfigurationError):
            MemoryRegion(start=0, size=100, tech=MemoryTechnology.DRAM)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryRegion(start=0, size=0, tech=MemoryTechnology.DRAM)


class TestPhysicalMemory:
    def test_regions_pack_consecutively(self):
        pm = PhysicalMemory()
        first = pm.add_region(MIB, MemoryTechnology.DRAM)
        second = pm.add_region(2 * MIB, MemoryTechnology.NVM)
        assert second.start == first.end

    def test_explicit_start(self):
        pm = PhysicalMemory()
        region = pm.add_region(MIB, MemoryTechnology.DRAM, start=4 * MIB)
        assert region.start == 4 * MIB

    def test_overlap_rejected(self):
        pm = PhysicalMemory()
        pm.add_region(2 * MIB, MemoryTechnology.DRAM, start=0)
        with pytest.raises(ConfigurationError):
            pm.add_region(2 * MIB, MemoryTechnology.NVM, start=MIB)

    def test_region_of_and_tech_of(self):
        pm = PhysicalMemory()
        dram = pm.add_region(MIB, MemoryTechnology.DRAM)
        nvm = pm.add_region(MIB, MemoryTechnology.NVM)
        assert pm.region_of(0) is dram
        assert pm.region_of(MIB) is nvm
        assert pm.tech_of(0) is MemoryTechnology.DRAM
        assert pm.tech_of(MIB + 4096) is MemoryTechnology.NVM

    def test_region_of_hole_raises(self):
        pm = PhysicalMemory()
        pm.add_region(MIB, MemoryTechnology.DRAM, start=0)
        with pytest.raises(InvalidAddressError):
            pm.region_of(4 * MIB)

    def test_tech_of_hole_defaults_dram(self):
        pm = PhysicalMemory()
        pm.add_region(MIB, MemoryTechnology.DRAM, start=0)
        assert pm.tech_of(100 * MIB) is MemoryTechnology.DRAM

    def test_totals_by_technology(self):
        pm = PhysicalMemory()
        pm.add_region(MIB, MemoryTechnology.DRAM)
        pm.add_region(3 * MIB, MemoryTechnology.NVM)
        assert pm.total_size() == 4 * MIB
        assert pm.total_size(MemoryTechnology.NVM) == 3 * MIB
        assert pm.total_frames(MemoryTechnology.DRAM) == MIB // PAGE_SIZE

    def test_out_of_order_insert_keeps_sorted(self):
        pm = PhysicalMemory()
        pm.add_region(MIB, MemoryTechnology.NVM, start=8 * MIB)
        pm.add_region(MIB, MemoryTechnology.DRAM, start=0)
        assert [region.start for region in pm.regions] == [0, 8 * MIB]
        assert pm.tech_of(8 * MIB) is MemoryTechnology.NVM
