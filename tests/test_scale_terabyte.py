"""Terabyte-scale smoke tests: the regime the paper is actually about.

"Intel and Micron's much-delayed 3D XPoint DIMM product promises 6TB of
storage in a 2-socket server" (§2).  These tests build a 1 TiB-NVM
machine and verify the O(1) claims hold at that scale — constant-size
structures (one extent, one RTE, one range-TLB entry) fronting half a
terabyte of data, with simulated costs identical to the megabyte cases.
"""

import pytest

from repro.core.rangetrans import RangeMemory
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, PAGE_SIZE, TIB, USEC


@pytest.fixture(scope="module")
def big_kernel():
    return Kernel(
        MachineConfig(
            dram_bytes=4 * GIB,
            nvm_bytes=1 * TIB,
            range_hardware=True,
            pmfs_extent_align_frames=512,
        )
    )


class TestTerabyteScale:
    def test_half_terabyte_file_is_one_extent(self, big_kernel):
        kernel = big_kernel
        inode = kernel.pmfs.create("/huge", size=512 * GIB)
        assert kernel.pmfs.extent_count(inode) == 1

    def test_range_map_512gb_costs_same_as_1mb(self, big_kernel):
        kernel = big_kernel
        rm = RangeMemory(kernel)
        small = kernel.pmfs.create("/small", size=1 * MIB)
        process = kernel.spawn("p")
        with kernel.measure() as m_small:
            rm.map_file(process, small)
        huge = kernel.pmfs.lookup("/huge")
        with kernel.measure() as m_huge:
            mapping = rm.map_file(process, huge)
        assert m_huge.elapsed_ns == m_small.elapsed_ns
        assert mapping.entry_count == 1

    def test_sparse_scan_of_terabyte_data(self, big_kernel):
        kernel = big_kernel
        rm = RangeMemory(kernel)
        process = kernel.spawn("scanner")
        huge = kernel.pmfs.lookup("/huge")
        mapping = rm.map_file(process, huge)
        with kernel.measure() as m:
            # One byte per GiB: 512 touches over half a terabyte.
            kernel.access_range(
                process, mapping.vaddr, 512 * GIB, stride=1 * GIB
            )
        assert m.counter_delta.get("walk_start") is None
        assert m.counter_delta.get("rtlb_hit", 0) >= 511
        # Each touch costs ~an NVM reference, nothing size-dependent.
        assert m.elapsed_ns < 512 * 2 * USEC

    def test_unmap_half_terabyte_constant(self, big_kernel):
        kernel = big_kernel
        rm = RangeMemory(kernel)
        process = kernel.spawn("q")
        huge = kernel.pmfs.lookup("/huge")
        mapping = rm.map_file(process, huge)
        with kernel.measure() as m:
            rm.unmap(mapping)
        assert m.elapsed_ns < 20 * USEC

    def test_whole_file_reclamation_at_scale(self, big_kernel):
        kernel = big_kernel
        free_before = kernel.nvm_allocator.free_blocks
        kernel.pmfs.create("/ephemeral", size=128 * GIB)
        with kernel.measure() as m:
            kernel.pmfs.unlink("/ephemeral")
        assert kernel.nvm_allocator.free_blocks == free_before
        # Deleting 128 GiB: a few journal records and one bitmap run.
        assert m.counter_delta.get("extent_free") == 1
        assert m.elapsed_ns < 20 * USEC
