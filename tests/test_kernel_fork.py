"""fork(): COW cloning of address spaces and descriptor tables."""

import pytest

from repro.errors import ConfigurationError, ProtectionError
from repro.kernel.kernel import Kernel, MachineConfig
from repro.paging.fault import FaultType
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags, Protection


@pytest.fixture
def forked(kernel):
    parent = kernel.spawn("parent")
    sys = kernel.syscalls(parent)
    va = sys.mmap(16 * KIB)
    kernel.access_range(parent, va, 16 * KIB, write=True)  # 4 resident pages
    child = sys.fork()
    return kernel, parent, child, va


class TestAddressSpaceCloning:
    def test_child_sees_parent_mappings(self, forked):
        kernel, parent, child, va = forked
        assert len(child.space.vmas) == len(parent.space.vmas)
        assert child.space.vmas[0].start == va

    def test_child_reads_shared_frames(self, forked):
        kernel, parent, child, va = forked
        pa_parent = kernel.access(parent, va)
        pa_child = kernel.access(child, va)
        assert pa_parent == pa_child  # still the same frame until a write

    def test_resident_ptes_copied(self, forked):
        kernel, parent, child, va = forked
        assert child.space.resident_pages() == 4

    def test_no_faults_on_child_read(self, forked):
        kernel, parent, child, va = forked
        before = kernel.counters.get("fault_trap")
        kernel.access_range(child, va, 16 * KIB)
        assert kernel.counters.get("fault_trap") == before

    def test_fork_cost_linear_in_resident_pages(self):
        # The eager per-PTE policy is the paper's motivating baseline:
        # pinned explicitly now that COW subtree sharing is the default.
        kernel = Kernel(
            MachineConfig(
                dram_bytes=512 * MIB, nvm_bytes=1 * GIB, fork_policy="eager"
            )
        )
        parent = kernel.spawn("p")
        sys = kernel.syscalls(parent)
        va = sys.mmap(256 * KIB)
        kernel.access_range(parent, va, 256 * KIB, write=True)
        with kernel.measure() as big:
            sys.fork()
        parent2 = kernel.spawn("p2")
        sys2 = kernel.syscalls(parent2)
        va2 = sys2.mmap(16 * KIB)
        kernel.access_range(parent2, va2, 16 * KIB, write=True)
        with kernel.measure() as small:
            sys2.fork()
        assert big.elapsed_ns > 3 * small.elapsed_ns

    def test_cow_fork_cheaper_than_eager_at_scale(self):
        # Same 256-page footprint: the per-window COW fork must beat the
        # per-PTE eager fork by a wide margin.  (The COW fork's residual
        # cost is the capacity-bounded TLB range invalidation, not a
        # per-page loop.)
        def fork_cost(policy):
            kernel = Kernel(
                MachineConfig(
                    dram_bytes=512 * MIB, nvm_bytes=1 * GIB, fork_policy=policy
                )
            )
            parent = kernel.spawn("p")
            sys = kernel.syscalls(parent)
            va = sys.mmap(1024 * KIB)
            kernel.access_range(parent, va, 1024 * KIB, write=True)
            with kernel.measure() as m:
                sys.fork()
            return m.elapsed_ns

        assert fork_cost("cow") * 3 < fork_cost("eager")

    def test_fork_dead_parent_rejected(self, kernel):
        parent = kernel.spawn("p")
        parent.exit()
        with pytest.raises(ConfigurationError):
            kernel.fork(parent)


class TestCopyOnWrite:
    def test_child_write_copies(self, forked):
        kernel, parent, child, va = forked
        pa_before = kernel.access(parent, va)
        kernel.access(child, va, write=True)  # COW in the child
        pa_child = kernel.access(child, va)
        pa_parent = kernel.access(parent, va)
        assert pa_child != pa_parent
        assert pa_parent == pa_before  # parent keeps the original

    def test_parent_write_also_copies(self, forked):
        kernel, parent, child, va = forked
        pa_shared = kernel.access(child, va)
        kernel.access(parent, va, write=True)  # parent got downgraded too
        assert kernel.counters.get("fault_cow") >= 1
        assert kernel.access(child, va) == pa_shared

    def test_cow_fault_counted(self, forked):
        kernel, parent, child, va = forked
        kernel.access(child, va, write=True)
        assert child.space.fault_stats[FaultType.COW] >= 1 or kernel.counters.get("fault_cow") >= 1

    def test_untouched_fork_pages_fault_fresh_in_child(self, kernel):
        parent = kernel.spawn("p")
        sys = kernel.syscalls(parent)
        va = sys.mmap(16 * KIB)
        kernel.access(parent, va, write=True)  # only page 0 resident
        child = sys.fork()
        before = kernel.counters.get("fault_minor")
        kernel.access(child, va + 12 * KIB)  # page 3: fresh demand fault
        assert kernel.counters.get("fault_minor") == before + 1
        # The fresh page is shared with the parent until someone writes.
        assert kernel.access(child, va + 12 * KIB) == kernel.access(
            parent, va + 12 * KIB
        )

    def test_readonly_parent_mapping_not_cowed(self, kernel):
        parent = kernel.spawn("p")
        sys = kernel.syscalls(parent)
        va = sys.mmap(PAGE_SIZE, prot=Protection.READ)
        kernel.access(parent, va)
        child = sys.fork()
        kernel.access(child, va)
        with pytest.raises(ProtectionError):
            kernel.access(child, va, write=True)


class TestResourceLifetimes:
    def test_fd_table_duplicated(self, kernel):
        parent = kernel.spawn("p")
        sys = kernel.syscalls(parent)
        fd = sys.open(kernel.tmpfs, "/f", create=True, size=4 * KIB)
        child = sys.fork()
        assert child.open_fd_count == 1
        inode = parent.fd(fd).inode
        assert inode.refcount == 2

    def test_child_exit_keeps_parent_memory(self, forked):
        kernel, parent, child, va = forked
        child.exit()
        kernel.access(parent, va)  # parent unaffected

    def test_parent_exit_keeps_child_memory(self, forked):
        kernel, parent, child, va = forked
        parent.exit()
        kernel.access(child, va)  # frames survive: child still a user

    def test_both_exits_free_frames(self, kernel):
        free_before = kernel.dram_buddy.free_frames
        parent = kernel.spawn("p")
        sys = kernel.syscalls(parent)
        va = sys.mmap(16 * KIB)
        kernel.access_range(parent, va, 16 * KIB, write=True)
        child = sys.fork()
        parent.exit()
        child.exit()
        # Data frames return; only page-table node frames stay out.
        assert kernel.dram_buddy.free_frames >= free_before - 24

    def test_private_copies_duplicated_eagerly(self, kernel):
        parent = kernel.spawn("p")
        sys = kernel.syscalls(parent)
        fd = sys.open(kernel.tmpfs, "/f", create=True, size=8 * KIB)
        va = sys.mmap(8 * KIB, fd=fd, flags=MapFlags.PRIVATE)
        kernel.access(parent, va, write=True)  # parent has a private copy
        child = sys.fork()
        child_vma = child.space.vmas[0]
        parent_vma = parent.space.vmas[0]
        assert set(child_vma.private_copies) == set(parent_vma.private_copies)
        assert (
            child_vma.private_copies[0] != parent_vma.private_copies[0]
        )
