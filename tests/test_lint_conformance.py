"""THE conformance gate: the shipped tree must satisfy its own checker.

This is the test CI leans on.  It fails when (a) someone adds a
size-dependent loop to a function declared O(1) without an allow or a
baselined reason, (b) a baselined path gets fixed but the baseline entry
lingers, or (c) a declared cost class stops matching what the simulated
clock actually measures.
"""

from pathlib import Path

import pytest

import repro
from repro.lint.astcheck import lint_tree
from repro.lint.baseline import DEFAULT_BASELINE, apply_baseline, load_baseline
from repro.lint.decorators import ComplexityClass
from repro.lint.ops import LIGHT_SIZES, OPERATIONS, fit_all

PACKAGE_ROOT = Path(repro.__file__).parent


@pytest.fixture(scope="module")
def outcome():
    result = lint_tree(PACKAGE_ROOT)
    return result, apply_baseline(
        result.violations, load_baseline(DEFAULT_BASELINE)
    )


class TestAstGate:
    def test_tree_is_clean_against_baseline(self, outcome):
        result, applied = outcome
        formatted = "\n".join(v.format() for v in applied.new)
        assert applied.new == [], f"new O(1) conformance findings:\n{formatted}"

    def test_no_stale_baseline_entries(self, outcome):
        _, applied = outcome
        stale = ", ".join(e.function for e in applied.stale)
        assert applied.stale == [], f"baseline entries no longer needed: {stale}"

    def test_checker_actually_saw_the_tree(self, outcome):
        result, _ = outcome
        assert result.files_checked >= 60
        assert result.functions_checked >= 50

    def test_legacy_baseline_is_retired(self, outcome):
        # grow_region's VMA-overlap scan and CryptoErase.return_frames'
        # per-frame free loop were the two documented O(n) exceptions.
        # Both are fixed (bisect tail probe; batched buddy.free_many),
        # so the baseline must be empty — a new entry means a genuinely
        # new O(n) path snuck in and needs its own justification.
        _, applied = outcome
        assert applied.suppressed == [], (
            "baseline should be empty; found: "
            + ", ".join(v.function for v in applied.suppressed)
        )


@pytest.fixture(scope="module")
def fits():
    return fit_all(LIGHT_SIZES)


class TestEmpiricalGate:
    def test_every_operation_fits_its_declaration(self, fits):
        failures = [
            f"{f.operation.name}: declared {f.operation.declared.value} "
            f"fitted {f.fit.fitted.value}"
            for f in fits
            if not f.ok
        ]
        assert not failures, "complexity fit failures:\n" + "\n".join(failures)

    def test_at_least_ten_constant_confirmations(self, fits):
        confirmed = [
            f
            for f in fits
            if f.operation.declared is ComplexityClass.CONSTANT
            and not f.operation.known_mismatch
            and f.fit.fitted is ComplexityClass.CONSTANT
        ]
        assert len(confirmed) >= 10

    def test_control_is_caught(self, fits):
        # The demand-fault touch loop is declared O(1) on purpose; the
        # fitter must see through the lie or it proves nothing.
        controls = [f for f in fits if f.operation.known_mismatch]
        assert controls, "registry lost its O(n) control"
        for control in controls:
            assert control.fit.fitted is not control.operation.declared
            assert control.ok

    def test_registry_covers_the_subsystems(self):
        prefixes = {op.name.split(".")[0] for op in OPERATIONS}
        assert {
            "syscall",
            "buddy",
            "slab",
            "zeropool",
            "pmfs",
            "fom",
            "premap",
            "rangetrans",
            "pbm",
            "vfs",
            "zeroing",
            "kernel",
            "syscalls",
        } <= prefixes
