"""PMFS crash consistency: journal undo/redo under injected failures."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import SimulatedCrashError
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE


@pytest.fixture
def fs(kernel):
    return kernel.pmfs


class TestFsck:
    def test_clean_fs_passes(self, fs):
        fs.create("/a", size=1 * MIB)
        fs.create("/b", size=64 * KIB)
        assert fs.fsck() == []

    def test_after_unlink_passes(self, fs):
        fs.create("/a", size=1 * MIB)
        fs.unlink("/a")
        assert fs.fsck() == []

    def test_detects_leaked_block(self, fs):
        fs.create("/a", size=4 * KIB)
        # Leak: allocate a block no file owns.
        fs.allocator.alloc_extent(1)
        problems = fs.fsck()
        assert any("owned by no file" in p for p in problems)


class TestInjectedCrashes:
    def test_crash_before_commit_is_undone(self, fs, kernel):
        free_before = fs.allocator.free_blocks
        fs.schedule_crash(0)  # first tick: after the first extent alloc
        with pytest.raises(SimulatedCrashError):
            fs.create("/doomed", size=1 * MIB)
        kernel.crash()
        # The allocation rolled back: no leak, fsck clean.
        assert fs.allocator.free_blocks == free_before
        assert fs.fsck() == []

    def test_crash_after_commit_is_redone(self, fs, kernel):
        fs.create("/pre", size=4 * KIB)  # something in the trees
        inode = fs.lookup("/pre")
        fs.schedule_crash(2)  # after alloc tick + commit's first tick
        with pytest.raises(SimulatedCrashError):
            fs.truncate(inode, 1 * MIB)
        kernel.crash()
        assert fs.fsck() == []
        # Either fully rolled back or fully applied, never in-between:
        assert inode.page_count * PAGE_SIZE in (4 * KIB, 4 * KIB)
        tree_blocks = fs._tree_of(inode).block_count
        assert tree_blocks in (1, 256)

    def test_crash_during_free_keeps_consistency(self, fs, kernel):
        fs.create("/gone", size=1 * MIB)
        fs.schedule_crash(0)
        with pytest.raises(SimulatedCrashError):
            fs.unlink("/gone")
        kernel.crash()
        assert fs.fsck() == []

    def test_schedule_validation(self, fs):
        with pytest.raises(ValueError):
            fs.schedule_crash(-1)

    @given(
        crash_tick=st.integers(0, 12),
        sizes=st.lists(st.integers(1, 64), min_size=1, max_size=5),
    )
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_crash_point_recovers_consistent(self, crash_tick, sizes):
        """Property: crash at *any* journal tick during a random op mix,
        and post-recovery fsck is clean with no leaked blocks."""
        kernel = Kernel(MachineConfig(dram_bytes=128 * MIB, nvm_bytes=256 * MIB))
        fs = kernel.pmfs
        for index, pages in enumerate(sizes[:-1]):
            fs.create(f"/warm{index}", size=pages * PAGE_SIZE)
        fs.schedule_crash(crash_tick)
        try:
            fs.create("/victim", size=sizes[-1] * PAGE_SIZE)
            inode = fs.lookup("/victim")
            fs.truncate(inode, (sizes[-1] + 8) * PAGE_SIZE)
            fs.unlink("/victim")
            if len(sizes) > 1:
                fs.unlink("/warm0")
        except SimulatedCrashError:
            pass
        kernel.crash()
        assert fs.fsck() == []
        # Bitmap accounting matches the trees exactly.
        tree_blocks = sum(
            tree.block_count for tree in fs._trees.values()
        )
        used = fs.allocator.total_blocks - fs.allocator.free_blocks
        assert tree_blocks == used
