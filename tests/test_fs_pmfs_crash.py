"""PMFS crash consistency: journal undo/redo under injected failures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulatedCrashError
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE


@pytest.fixture
def fs(kernel):
    return kernel.pmfs


class TestFsck:
    def test_clean_fs_passes(self, fs):
        fs.create("/a", size=1 * MIB)
        fs.create("/b", size=64 * KIB)
        assert fs.fsck() == []

    def test_after_unlink_passes(self, fs):
        fs.create("/a", size=1 * MIB)
        fs.unlink("/a")
        assert fs.fsck() == []

    def test_detects_leaked_block(self, fs):
        fs.create("/a", size=4 * KIB)
        # Leak: allocate a block no file owns.
        fs.allocator.alloc_extent(1)
        problems = fs.fsck()
        assert any("owned by no file" in p for p in problems)


class TestInjectedCrashes:
    def test_crash_before_commit_is_undone(self, fs, kernel):
        free_before = fs.allocator.free_blocks
        fs.schedule_crash(0)  # first tick: after the first extent alloc
        with pytest.raises(SimulatedCrashError):
            fs.create("/doomed", size=1 * MIB)
        kernel.crash()
        # The allocation rolled back: no leak, fsck clean.
        assert fs.allocator.free_blocks == free_before
        assert fs.fsck() == []

    def test_crash_after_commit_is_redone(self, fs, kernel):
        fs.create("/pre", size=4 * KIB)  # something in the trees
        inode = fs.lookup("/pre")
        fs.schedule_crash(2)  # after alloc tick + commit's first tick
        with pytest.raises(SimulatedCrashError):
            fs.truncate(inode, 1 * MIB)
        kernel.crash()
        assert fs.fsck() == []
        # Either fully rolled back or fully applied, never in-between:
        assert inode.page_count * PAGE_SIZE in (4 * KIB, 4 * KIB)
        tree_blocks = fs._tree_of(inode).block_count
        assert tree_blocks in (1, 256)

    def test_crash_during_free_keeps_consistency(self, fs, kernel):
        fs.create("/gone", size=1 * MIB)
        fs.schedule_crash(0)
        with pytest.raises(SimulatedCrashError):
            fs.unlink("/gone")
        kernel.crash()
        assert fs.fsck() == []

    def test_schedule_validation(self, fs):
        with pytest.raises(ValueError):
            fs.schedule_crash(-1)


class TestTickSemantics:
    """Nail down exactly where each ``schedule_crash`` tick fires.

    For a single-extent allocation the durable steps are: record the
    extent in the journal (tick 0), commit-pre (tick 1), commit-post
    (tick 2).  Tick 0 therefore fires *after* the first journaled write —
    there is no tick before it, because nothing durable has happened yet.
    """

    def test_tick0_fires_after_first_journaled_write(self, fs, kernel):
        free_before = fs.allocator.free_blocks
        fs.schedule_crash(0)
        with pytest.raises(SimulatedCrashError):
            fs.create("/f", size=PAGE_SIZE)
        # The extent was taken from the bitmap and recorded before the
        # crash fired: the journal holds an uncommitted record with it.
        record = fs.journal[-1]
        assert not record.committed
        assert len(record.extents) == 1
        assert fs.allocator.free_blocks == free_before - 1
        kernel.crash()
        assert fs.allocator.free_blocks == free_before

    def test_tick1_fires_at_commit_pre(self, fs, kernel):
        fs.schedule_crash(1)
        with pytest.raises(SimulatedCrashError):
            fs.create("/f", size=PAGE_SIZE)
        record = fs.journal[-1]
        assert not record.committed and not record.applied
        kernel.crash()
        assert fs.fsck() == []
        # Undone: the file's storage never became durable.
        tree = fs._trees.get(fs.lookup("/f").ino)
        assert tree is None or tree.block_count == 0

    def test_tick2_fires_at_commit_post(self, fs, kernel):
        fs.schedule_crash(2)
        with pytest.raises(SimulatedCrashError):
            fs.create("/f", size=PAGE_SIZE)
        record = fs.journal[-1]
        assert record.committed and not record.applied
        kernel.crash()
        # Redone: the extent landed in the tree despite the crash.
        assert record.extents[0].count == 1
        assert fs.fsck() == []

    @staticmethod
    def _fragmented_fs(clock, costs, counters):
        """A 4-block PMFS whose only free blocks are non-contiguous."""
        from repro.fs.pmfs import BlockAllocator, Pmfs
        from repro.hw.costmodel import MemoryTechnology
        from repro.mem.physical import MemoryRegion

        region = MemoryRegion(
            start=0, size=4 * PAGE_SIZE, tech=MemoryTechnology.NVM, name="nv"
        )
        fs = Pmfs(
            "pmfs-tiny",
            BlockAllocator(region, clock, costs, counters),
            clock,
            costs,
            counters,
        )
        for name in "abcd":
            fs.create(f"/{name}", size=PAGE_SIZE)
        fs.unlink("/a")
        fs.unlink("/c")
        return fs  # free blocks: {0, 2} — no contiguous pair

    def test_multi_extent_alloc_gets_one_tick_per_extent(
        self, clock, costs, counters
    ):
        # A 2-block allocation over fragmented space takes two 1-block
        # extents, so the tick map shifts: 0 and 1 land after each extent
        # record, commit-pre is tick 2, commit-post is tick 3.
        fs = self._fragmented_fs(clock, costs, counters)
        fs.schedule_crash(1)
        with pytest.raises(SimulatedCrashError):
            fs.create("/big", size=2 * PAGE_SIZE)
        record = fs.journal[-1]
        assert not record.committed
        assert len(record.extents) == 2
        fs.crash()
        assert fs.fsck() == []
        assert fs.allocator.free_blocks == 2

    def test_multi_extent_commit_post_is_final_tick(
        self, clock, costs, counters
    ):
        fs = self._fragmented_fs(clock, costs, counters)
        fs.schedule_crash(3)
        with pytest.raises(SimulatedCrashError):
            fs.create("/big", size=2 * PAGE_SIZE)
        record = fs.journal[-1]
        assert record.committed and not record.applied
        fs.crash()
        assert fs.fsck() == []
        # Redone: both extents are durable, nothing is free.
        assert fs.allocator.free_blocks == 0

    @given(
        crash_tick=st.integers(0, 12),
        sizes=st.lists(st.integers(1, 64), min_size=1, max_size=5),
    )
    @settings(max_examples=40)
    def test_any_crash_point_recovers_consistent(self, crash_tick, sizes):
        """Property: crash at *any* journal tick during a random op mix,
        and post-recovery fsck is clean with no leaked blocks."""
        kernel = Kernel(MachineConfig(dram_bytes=128 * MIB, nvm_bytes=256 * MIB))
        fs = kernel.pmfs
        for index, pages in enumerate(sizes[:-1]):
            fs.create(f"/warm{index}", size=pages * PAGE_SIZE)
        fs.schedule_crash(crash_tick)
        try:
            fs.create("/victim", size=sizes[-1] * PAGE_SIZE)
            inode = fs.lookup("/victim")
            fs.truncate(inode, (sizes[-1] + 8) * PAGE_SIZE)
            fs.unlink("/victim")
            if len(sizes) > 1:
                fs.unlink("/warm0")
        except SimulatedCrashError:
            pass
        kernel.crash()
        assert fs.fsck() == []
        # Bitmap accounting matches the trees exactly.
        tree_blocks = sum(
            tree.block_count for tree in fs._trees.values()
        )
        used = fs.allocator.total_blocks - fs.allocator.free_blocks
        assert tree_blocks == used
