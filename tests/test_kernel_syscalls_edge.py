"""Syscall-layer edge cases not covered by the happy-path suites."""

import pytest

from repro.errors import (
    BadFileDescriptorError,
    FileNotFoundError_,
    MappingError,
)
from repro.units import KIB, PAGE_SIZE
from repro.vm.vma import MapFlags, Protection


@pytest.fixture
def env(kernel):
    process = kernel.spawn("edge")
    return kernel, process, kernel.syscalls(process)


class TestDescriptors:
    def test_double_close_rejected(self, env):
        kernel, process, sys = env
        fd = sys.open(kernel.tmpfs, "/f", create=True)
        sys.close(fd)
        with pytest.raises(BadFileDescriptorError):
            sys.close(fd)

    def test_open_missing_propagates(self, env):
        kernel, _, sys = env
        with pytest.raises(FileNotFoundError_):
            sys.open(kernel.tmpfs, "/missing")

    def test_fds_are_monotonic_and_unique(self, env):
        kernel, process, sys = env
        fds = [
            sys.open(kernel.tmpfs, f"/m{i}", create=True) for i in range(5)
        ]
        assert len(set(fds)) == 5
        assert fds == sorted(fds)

    def test_read_write_advance_offset_together(self, env):
        kernel, _, sys = env
        fd = sys.open(kernel.pmfs, "/rw", create=True)
        sys.write(fd, b"abc")
        sys.write(fd, b"def")
        assert sys.pread(fd, 0, 6) == b"abcdef"
        # read picks up after the writes' shared offset
        assert sys.read(fd, 3) == b""


class TestMmapEdge:
    def test_explicit_address_honored(self, env):
        kernel, process, sys = env
        addr = 0x7E00_0000_0000
        got = sys.mmap(8 * KIB, addr=addr)
        assert got == addr
        kernel.access(process, addr)

    def test_overlapping_explicit_address_rejected(self, env):
        kernel, _, sys = env
        addr = 0x7E00_0000_0000
        sys.mmap(8 * KIB, addr=addr)
        with pytest.raises(MappingError):
            sys.mmap(8 * KIB, addr=addr + PAGE_SIZE)

    def test_mmap_names_show_in_vmas(self, env):
        kernel, process, sys = env
        sys.mmap(PAGE_SIZE, name="arena")
        assert any(vma.name == "arena" for vma in process.space.vmas)

    def test_file_mmap_bumps_inode_refcount(self, env):
        kernel, process, sys = env
        fd = sys.open(kernel.tmpfs, "/f", create=True, size=4 * KIB)
        inode = process.fd(fd).inode
        before = inode.refcount
        sys.mmap(4 * KIB, fd=fd, flags=MapFlags.SHARED)
        assert inode.refcount == before + 1

    def test_mprotect_via_syscall(self, env):
        kernel, process, sys = env
        va = sys.mmap(PAGE_SIZE)
        sys.mprotect(va, PAGE_SIZE, Protection.READ)
        assert process.space.vmas[0].prot == Protection.READ

    def test_unlink_missing_propagates(self, env):
        kernel, _, sys = env
        with pytest.raises(FileNotFoundError_):
            sys.unlink(kernel.tmpfs, "/ghost")

    def test_syscall_counters(self, env):
        kernel, _, sys = env
        sys.mmap(PAGE_SIZE)
        fd = sys.open(kernel.tmpfs, "/c", create=True)
        sys.close(fd)
        assert kernel.counters.get("sys_mmap") == 1
        assert kernel.counters.get("sys_open") == 1
        assert kernel.counters.get("sys_close") == 1
