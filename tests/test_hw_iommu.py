"""IOMMU/DMA pinning: pinned vs implicit (file-only) device access."""

import pytest

from repro.errors import MappingError
from repro.hw.iommu import IOMMU_ENTRY_NS, PIN_PAGE_NS, PRI_FAULT_NS, Iommu
from repro.mem.frame_meta import PageFlags
from repro.units import MIB, PAGE_SIZE


@pytest.fixture
def iommu(kernel):
    return Iommu(kernel.clock, kernel.costs, kernel.counters, kernel.frame_table)


class TestPinnedPath:
    def test_pin_cost_linear_in_pages(self, kernel, iommu):
        with kernel.measure() as small:
            region = iommu.map_pinned([(0, 4 * PAGE_SIZE)])
        iommu.unmap_pinned(region)
        with kernel.measure() as big:
            region = iommu.map_pinned([(0, 64 * PAGE_SIZE)])
        assert big.elapsed_ns > 10 * small.elapsed_ns

    def test_pin_marks_frames_mlocked(self, kernel, iommu):
        region = iommu.map_pinned([(0, 2 * PAGE_SIZE)])
        assert kernel.frame_table.peek(0).has_flag(PageFlags.MLOCKED)
        iommu.unmap_pinned(region)
        assert not kernel.frame_table.peek(0).has_flag(PageFlags.MLOCKED)

    def test_unpin_linear_too(self, kernel, iommu):
        region = iommu.map_pinned([(0, 32 * PAGE_SIZE)])
        with kernel.measure() as m:
            iommu.unmap_pinned(region)
        assert m.elapsed_ns >= 32 * (PIN_PAGE_NS + IOMMU_ENTRY_NS)

    def test_unaligned_run_rejected(self, iommu):
        with pytest.raises(MappingError):
            iommu.map_pinned([(100, PAGE_SIZE)])
        with pytest.raises(MappingError):
            iommu.map_pinned([(0, 100)])


class TestImplicitPath:
    def test_implicit_cost_per_extent(self, kernel, iommu):
        with kernel.measure() as small:
            a = iommu.map_implicit([(0, 4 * PAGE_SIZE)])
        with kernel.measure() as big:
            b = iommu.map_implicit([(16 * MIB, 16 * MIB)])
        assert small.elapsed_ns == big.elapsed_ns == IOMMU_ENTRY_NS

    def test_implicit_no_frame_metadata(self, kernel, iommu):
        with kernel.measure() as m:
            iommu.map_implicit([(0, 64 * PAGE_SIZE)])
        assert m.counter_delta.get("frame_meta_touch") is None
        assert m.counter_delta.get("dma_extent_mapped") == 1

    def test_unmap_implicit_per_extent(self, kernel, iommu):
        region = iommu.map_implicit([(0, MIB), (2 * MIB, MIB)])
        with kernel.measure() as m:
            iommu.unmap_implicit(region)
        assert m.counter_delta.get("dma_extent_unmapped") == 2

    def test_wrong_unmap_kind_rejected(self, iommu):
        region = iommu.map_pinned([(0, PAGE_SIZE)])
        with pytest.raises(MappingError):
            iommu.unmap_implicit(region)


class TestFaultsAndTransfers:
    def test_pri_fault_penalty(self, kernel, iommu):
        with kernel.measure() as m:
            iommu.device_fault()
        assert m.elapsed_ns == PRI_FAULT_NS
        assert kernel.counters.get("iommu_pri_fault") == 1

    def test_transfer_bounds_checked(self, iommu):
        region = iommu.map_implicit([(0, PAGE_SIZE)])
        iommu.transfer(region, PAGE_SIZE)
        with pytest.raises(MappingError):
            iommu.transfer(region, 2 * PAGE_SIZE)
        with pytest.raises(MappingError):
            iommu.transfer(region, 0)

    def test_region_accounting(self, iommu):
        a = iommu.map_implicit([(0, PAGE_SIZE)])
        b = iommu.map_pinned([(MIB, PAGE_SIZE)])
        assert iommu.mapped_regions == 2
        iommu.unmap_implicit(a)
        iommu.unmap_pinned(b)
        assert iommu.mapped_regions == 0
        with pytest.raises(MappingError):
            iommu.unmap_implicit(a)
