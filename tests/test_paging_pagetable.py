"""Page tables: mapping, huge leaves, subtree sharing, teardown."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AlignmentError, ConfigurationError, MappingError
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel
from repro.paging.pagetable import PageTable, Pte
from repro.units import GIB, HUGE_PAGE_1G, HUGE_PAGE_2M, MIB, PAGE_SIZE


class TestGeometry:
    def test_va_bits(self):
        assert PageTable(levels=4).va_bits == 48
        assert PageTable(levels=5).va_bits == 57

    def test_bad_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            PageTable(levels=3)

    def test_index_at_known_values(self):
        table = PageTable(levels=4)
        vaddr = (3 << 39) | (5 << 30) | (7 << 21) | (9 << 12)
        assert table.index_at(vaddr, 0) == 3
        assert table.index_at(vaddr, 1) == 5
        assert table.index_at(vaddr, 2) == 7
        assert table.index_at(vaddr, 3) == 9

    def test_span_at(self):
        table = PageTable(levels=4)
        assert table.span_at(3) == PAGE_SIZE
        assert table.span_at(2) == HUGE_PAGE_2M
        assert table.span_at(1) == HUGE_PAGE_1G


class TestMapping:
    def test_map_lookup_roundtrip(self):
        table = PageTable()
        table.map(0x7F0000000000, 42)
        pte = table.lookup(0x7F0000000123)
        assert pte is not None and pte.pfn == 42

    def test_unmapped_lookup_none(self):
        assert PageTable().lookup(0x1000) is None

    def test_map_2m_huge_page(self):
        table = PageTable()
        table.map(2 * HUGE_PAGE_2M, 5, page_size=HUGE_PAGE_2M)
        pte = table.lookup(2 * HUGE_PAGE_2M + 12345)
        assert pte.page_size == HUGE_PAGE_2M
        assert pte.paddr == 5 * HUGE_PAGE_2M

    def test_map_1g_huge_page(self):
        table = PageTable()
        table.map(GIB, 3, page_size=HUGE_PAGE_1G)
        assert table.lookup(GIB + 500 * MIB).pfn == 3

    def test_misaligned_huge_map_rejected(self):
        with pytest.raises(AlignmentError):
            PageTable().map(PAGE_SIZE, 0, page_size=HUGE_PAGE_2M)

    def test_unsupported_page_size_rejected(self):
        with pytest.raises(ConfigurationError):
            PageTable().map(0, 0, page_size=8192)

    def test_small_map_under_huge_leaf_rejected(self):
        table = PageTable()
        table.map(0, 0, page_size=HUGE_PAGE_2M)
        with pytest.raises(MappingError):
            table.map(PAGE_SIZE, 1)

    def test_huge_map_over_existing_subtree_rejected(self):
        table = PageTable()
        table.map(0, 0)  # creates 4K leaf => subtree down to depth 3
        with pytest.raises(MappingError):
            table.map(0, 1, page_size=HUGE_PAGE_2M)

    def test_node_count_grows_lazily(self):
        table = PageTable(levels=4)
        assert table.node_count == 1  # root only
        table.map(0, 0)
        assert table.node_count == 4  # root + 3 interior
        table.map(PAGE_SIZE, 1)  # same subtree
        assert table.node_count == 4

    def test_pte_write_charged(self):
        clock = SimClock()
        counters = EventCounters()
        table = PageTable(clock=clock, costs=CostModel(), counters=counters)
        table.map(0, 0)
        assert counters.get("pte_write") == 1
        assert counters.get("pt_node_alloc") == 4


class TestUnmapProtect:
    def test_unmap_removes(self):
        table = PageTable()
        table.map(0x4000, 9)
        removed = table.unmap(0x4000)
        assert removed.pfn == 9
        assert table.lookup(0x4000) is None

    def test_unmap_absent_rejected(self):
        with pytest.raises(MappingError):
            PageTable().unmap(0)

    def test_unmap_huge_needs_size(self):
        table = PageTable()
        table.map(0, 2, page_size=HUGE_PAGE_2M)
        pte = table.unmap(0, page_size=HUGE_PAGE_2M)
        assert pte.page_size == HUGE_PAGE_2M

    def test_protect_rewrites_permission(self):
        table = PageTable()
        table.map(0, 1, writable=True)
        table.protect(0, writable=False)
        assert not table.lookup(0).writable


class TestSubtreeSharing:
    def test_link_subtree_shares_translations(self):
        donor = PageTable()
        for page in range(512):
            donor.map(page * PAGE_SIZE, 1000 + page)
        node = donor.subtree_at(0, 3)
        other = PageTable()
        other.link_subtree(HUGE_PAGE_2M, node)
        assert other.lookup(HUGE_PAGE_2M + 5 * PAGE_SIZE).pfn == 1005

    def test_link_charges_one_pte_write(self):
        donor = PageTable()
        donor.map(0, 1)
        node = donor.subtree_at(0, 3)
        counters = EventCounters()
        other = PageTable(counters=counters)
        other.link_subtree(0, node)
        assert counters.get("pte_write") == 1

    def test_link_misaligned_rejected(self):
        donor = PageTable()
        donor.map(0, 1)
        node = donor.subtree_at(0, 3)
        with pytest.raises(AlignmentError):
            PageTable().link_subtree(PAGE_SIZE, node)

    def test_link_occupied_slot_rejected(self):
        donor = PageTable()
        donor.map(0, 1)
        node = donor.subtree_at(0, 3)
        table = PageTable()
        table.map(0, 2)  # occupies the depth-2 slot for window 0
        with pytest.raises(MappingError):
            table.link_subtree(0, node)

    def test_unlink_restores_and_decrements(self):
        donor = PageTable()
        donor.map(0, 1)
        node = donor.subtree_at(0, 3)
        table = PageTable()
        table.link_subtree(0, node)
        assert node.refs == 2
        unlinked = table.unlink_subtree(0, 3)
        assert unlinked is node
        assert node.refs == 1
        assert table.lookup(0) is None

    def test_clear_detaches_shared_subtree_without_destroying(self):
        donor = PageTable()
        donor.map(0, 1)
        node = donor.subtree_at(0, 3)
        table = PageTable()
        table.link_subtree(0, node)
        table.clear()
        # Donor still translates through the shared node.
        assert donor.lookup(0).pfn == 1

    def test_clear_counts_owned_leaves(self):
        table = PageTable()
        table.map(0, 1)
        table.map(PAGE_SIZE, 2)
        assert table.clear() == 2
        assert table.leaf_count() == 0


class TestIteration:
    def test_iter_leaves_sorted(self):
        table = PageTable()
        table.map(5 * PAGE_SIZE, 50)
        table.map(PAGE_SIZE, 10)
        table.map(HUGE_PAGE_2M * 4, 99, page_size=HUGE_PAGE_2M)
        leaves = list(table.iter_leaves())
        assert [va for va, _ in leaves] == sorted(va for va, _ in leaves)
        assert len(leaves) == 3

    @given(st.sets(st.integers(0, 2**20), max_size=30))
    @settings(max_examples=30)
    def test_map_iter_roundtrip(self, vpns):
        table = PageTable()
        for vpn in vpns:
            table.map(vpn * PAGE_SIZE, vpn + 1)
        found = {va // PAGE_SIZE: pte.pfn for va, pte in table.iter_leaves()}
        assert found == {vpn: vpn + 1 for vpn in vpns}
