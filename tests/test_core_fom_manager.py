"""File-only memory manager: allocate, map strategies, release."""

import pytest

from repro.core.fom import FileOnlyMemory, MapStrategy
from repro.core.o1.policy import ExtentPolicy
from repro.errors import ConfigurationError, MappingError, ProtectionError
from repro.units import HUGE_PAGE_2M, KIB, MIB, PAGE_SIZE
from repro.vm.vma import Protection


@pytest.fixture
def env(aligned_kernel):
    return aligned_kernel, FileOnlyMemory(aligned_kernel)


@pytest.fixture
def renv(range_kernel):
    return range_kernel, FileOnlyMemory(range_kernel)


class TestAllocate:
    def test_region_is_a_file(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 100 * KIB)
        assert fom.fs.exists(region.path)
        assert region.inode.fs is kernel.pmfs

    def test_policy_rounds_up_space_for_time(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 100 * KIB)
        assert region.allocated_bytes == HUGE_PAGE_2M
        assert fom.policy.ledger.wasted_bytes > 0

    def test_named_region(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 1 * MIB, name="/mydata", persistent=True)
        assert region.path == "/mydata"
        assert kernel.pmfs.lookup("/mydata").persistent

    def test_extent_strategy_no_faults(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 4 * MIB)
        kernel.access_range(process, region.vaddr, 4 * MIB)
        assert kernel.counters.get("fault_trap") == 0

    def test_extent_strategy_uses_huge_pages(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        with kernel.measure() as m:
            fom.allocate(process, 4 * MIB)
        assert m.counter_delta.get("pte_write") == 2  # two 2 MiB PTEs

    def test_demand_strategy_faults_per_page(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 64 * KIB, strategy=MapStrategy.DEMAND)
        kernel.access_range(process, region.vaddr, 64 * KIB)
        assert kernel.counters.get("fault_minor") == 16

    def test_premap_strategy(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 2 * MIB, strategy=MapStrategy.PREMAP)
        kernel.access_range(process, region.vaddr, 2 * MIB)
        assert kernel.counters.get("fault_trap") == 0
        assert region.attachment is not None

    def test_range_strategy_needs_hardware(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        with pytest.raises(ConfigurationError):
            fom.allocate(process, 1 * MIB, strategy=MapStrategy.RANGE)

    def test_range_strategy_with_hardware(self, renv):
        kernel, fom = renv
        process = kernel.spawn("p")
        region = fom.allocate(process, 64 * MIB, strategy=MapStrategy.RANGE)
        assert region.range_mapping is not None
        kernel.access(process, region.vaddr + 63 * MIB)
        assert kernel.counters.get("fault_trap") == 0

    def test_readonly_region(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 1 * MIB, prot=Protection.READ)
        kernel.access(process, region.vaddr)
        with pytest.raises(ProtectionError):
            kernel.access(process, region.vaddr, write=True)

    def test_zero_size_rejected(self, env):
        kernel, fom = env
        with pytest.raises(MappingError):
            fom.allocate(kernel.spawn("p"), 0)

    def test_allocation_constant_time_across_sizes(self, env):
        # The headline O(1) property: allocating 2 MiB and 512 MiB cost
        # the same number of PTE writes and extent allocations.
        kernel, fom = env
        process = kernel.spawn("p")
        with kernel.measure() as small:
            fom.allocate(process, 2 * MIB)
        with kernel.measure() as big:
            fom.allocate(process, 512 * MIB)
        assert small.counter_delta.get("extent_alloc") == big.counter_delta.get(
            "extent_alloc"
        )
        # Huge-page PTEs scale with size/2MiB, not size/4KiB; at 512 MiB
        # the count is 256 instead of 131072.
        assert big.counter_delta.get("pte_write") <= 512


class TestOpenRegion:
    def test_reopen_persistent_data(self, env):
        kernel, fom = env
        p1 = kernel.spawn("writer")
        region = fom.allocate(p1, 1 * MIB, name="/db", persistent=True)
        fom.release(region)
        assert fom.fs.exists("/db")  # persistent: unlink skipped
        p2 = kernel.spawn("reader")
        reopened = fom.open_region(p2, "/db")
        kernel.access(p2, reopened.vaddr)

    def test_open_missing_raises(self, env):
        kernel, fom = env
        from repro.errors import FileNotFoundError_

        with pytest.raises(FileNotFoundError_):
            fom.open_region(kernel.spawn("p"), "/absent")

    def test_open_empty_rejected(self, env):
        kernel, fom = env
        fom.fs.create("/empty")
        with pytest.raises(MappingError):
            fom.open_region(kernel.spawn("p"), "/empty")


class TestRelease:
    def test_release_unmaps_and_unlinks_temp(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        region = fom.allocate(process, 1 * MIB)
        path = region.path
        fom.release(region)
        assert not fom.fs.exists(path)
        assert process.space.vmas == []

    def test_release_frees_nvm_blocks(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        free_before = kernel.nvm_allocator.free_blocks
        region = fom.allocate(process, 4 * MIB)
        fom.release(region)
        assert kernel.nvm_allocator.free_blocks == free_before

    def test_double_release_rejected(self, env):
        kernel, fom = env
        region = fom.allocate(kernel.spawn("p"), 1 * MIB)
        fom.release(region)
        with pytest.raises(MappingError):
            fom.release(region)

    def test_exit_process_releases_everything(self, env):
        kernel, fom = env
        process = kernel.spawn("p")
        for _ in range(5):
            fom.allocate(process, 1 * MIB)
        assert fom.exit_process(process) == 5
        assert fom.regions_of(process) == []

    def test_release_keeps_named_persistent(self, env):
        kernel, fom = env
        region = fom.allocate(
            kernel.spawn("p"), 1 * MIB, name="/keepme", persistent=True
        )
        fom.release(region)
        assert fom.fs.exists("/keepme")

    def test_release_unlink_override(self, env):
        kernel, fom = env
        region = fom.allocate(
            kernel.spawn("p"), 1 * MIB, name="/tmpdata", persistent=True
        )
        fom.release(region, unlink=True)
        assert not fom.fs.exists("/tmpdata")


class TestTmpfsBackend:
    def test_fom_over_tmpfs(self, aligned_kernel):
        kernel = aligned_kernel
        fom = FileOnlyMemory(kernel, fs=kernel.tmpfs)
        process = kernel.spawn("p")
        region = fom.allocate(process, 256 * KIB)
        kernel.access_range(process, region.vaddr, 256 * KIB)
        assert kernel.counters.get("fault_trap") == 0
