"""smaps/meminfo reporting."""

import pytest

from repro.analysis.report import format_meminfo, meminfo, smaps
from repro.core.fom import FileOnlyMemory
from repro.units import KIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags


class TestSmaps:
    def test_lists_every_vma(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        sys.mmap(16 * KIB, name="heap")
        sys.mmap(8 * KIB, name="stack")
        text = smaps(process)
        assert "heap" in text and "stack" in text
        assert text.count("0x7f") >= 2

    def test_resident_tracks_faults(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        va = sys.mmap(16 * KIB, name="data")
        assert "0 B" in smaps(process)
        kernel.access(process, va)
        assert "4.0 KiB" in smaps(process)

    def test_huge_mappings_reported(self, aligned_kernel):
        fom = FileOnlyMemory(aligned_kernel)
        process = aligned_kernel.spawn("p")
        fom.allocate(process, 2 * MIB)
        text = smaps(process)
        assert "2.0 MiB" in text


class TestMeminfo:
    def test_accounts_dram_and_nvm(self, kernel):
        info = meminfo(kernel)
        assert info["dram_total_bytes"] == kernel.dram_region.size
        assert info["nvm_total_bytes"] == kernel.nvm_region.size
        assert info["dram_free_bytes"] <= info["dram_total_bytes"]

    def test_allocation_moves_the_needle(self, kernel):
        before = meminfo(kernel)["dram_free_bytes"]
        kernel.tmpfs.create("/f", size=1 * MIB)
        after = meminfo(kernel)["dram_free_bytes"]
        assert before - after == 1 * MIB

    def test_process_count(self, kernel):
        kernel.spawn("a")
        b = kernel.spawn("b")
        assert meminfo(kernel)["processes"] == 2
        b.exit()
        assert meminfo(kernel)["processes"] == 1

    def test_format_meminfo_renders(self, kernel):
        text = format_meminfo(kernel)
        assert "dram_total_bytes" in text
        assert "MiB" in text or "GiB" in text
