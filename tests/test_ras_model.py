"""Unit tests for the seeded NVM media-fault model."""

from __future__ import annotations

from repro.ras import FaultKind, MediaFaultModel


def _bound_model(seed: int = 0, faults: int = 6) -> MediaFaultModel:
    model = MediaFaultModel(seed=seed, faults_per_bind=faults)
    model.bind_nvm(first_pfn=0x1000, frame_count=4096)
    return model


class TestSampling:
    def test_same_seed_same_population(self):
        a = _bound_model(seed=7)
        b = _bound_model(seed=7)
        assert a.faults() == b.faults()

    def test_different_seeds_differ(self):
        a = _bound_model(seed=0)
        b = _bound_model(seed=1)
        assert a.faults() != b.faults()

    def test_kind_cycle_covers_all_three_modes(self):
        model = _bound_model(faults=6)
        kinds = [fault.kind for fault in model.faults()]
        assert kinds.count(FaultKind.DEAD) == 2
        assert kinds.count(FaultKind.POISON) == 2
        assert kinds.count(FaultKind.TRANSIENT) == 2

    def test_kinds_cycle_over_sorted_pfns(self):
        model = _bound_model(faults=6)
        faults = model.faults()  # already sorted by pfn
        expected = (
            FaultKind.DEAD,
            FaultKind.POISON,
            FaultKind.TRANSIENT,
        ) * 2
        assert tuple(f.kind for f in faults) == expected

    def test_dram_spans_sampled_clean(self):
        model = MediaFaultModel(seed=0, faults_per_bind=6)
        model.bind_dram(first_pfn=0, frame_count=1024)
        assert model.faults() == ()
        assert model.spans() == ((0, 1024),)

    def test_faults_per_bind_capped_by_span(self):
        model = MediaFaultModel(seed=0, faults_per_bind=100)
        model.bind_nvm(first_pfn=0, frame_count=8)
        assert len(model.faults()) == 8

    def test_spans_preserve_bind_order(self):
        model = MediaFaultModel(seed=0, faults_per_bind=0)
        model.bind_dram(0, 64)
        model.bind_nvm(64, 128)
        assert model.spans() == ((0, 64), (64, 128))


class TestProbing:
    def test_probe_clean_frame_is_none(self):
        model = _bound_model()
        clean = next(
            pfn
            for pfn in range(0x1000, 0x1000 + 4096)
            if model.probe(pfn) is None
        )
        assert model.probe(clean) is None

    def test_probe_reports_injected_fault(self):
        model = MediaFaultModel(faults_per_bind=0)
        fault = model.inject(42, FaultKind.POISON)
        assert model.probe(42) is fault

    def test_retired_frame_probes_clean(self):
        model = MediaFaultModel(faults_per_bind=0)
        model.inject(42, FaultKind.DEAD)
        model.retire(42)
        assert model.probe(42) is None
        assert 42 in model.retired
        assert model.faults() == ()

    def test_inject_reactivates_retired_frame(self):
        model = MediaFaultModel(faults_per_bind=0)
        model.inject(42, FaultKind.DEAD)
        model.retire(42)
        model.inject(42, FaultKind.TRANSIENT)
        assert model.probe(42) is not None
        assert 42 not in model.retired

    def test_transient_fails_bounded_by_fail_count(self):
        model = MediaFaultModel(faults_per_bind=0)
        model.inject(7, FaultKind.TRANSIENT, fail_count=2)
        assert model.transient_fails(7, 0)
        assert model.transient_fails(7, 1)
        assert not model.transient_fails(7, 2)

    def test_transient_fails_false_for_other_kinds(self):
        model = MediaFaultModel(faults_per_bind=0)
        model.inject(7, FaultKind.POISON)
        assert not model.transient_fails(7, 0)


class TestMutation:
    def test_clear_poison(self):
        model = MediaFaultModel(faults_per_bind=0)
        model.inject(9, FaultKind.POISON)
        assert model.clear_poison(9)
        assert model.probe(9) is None

    def test_clear_poison_ignores_dead(self):
        model = MediaFaultModel(faults_per_bind=0)
        model.inject(9, FaultKind.DEAD)
        assert not model.clear_poison(9)
        assert model.probe(9) is not None

    def test_describe_lists_active_faults(self):
        model = MediaFaultModel(faults_per_bind=0)
        assert model.describe() == "no active media faults"
        model.inject(3, FaultKind.TRANSIENT, fail_count=2)
        model.inject(5, FaultKind.DEAD)
        text = model.describe()
        assert "transient (fails 2x)" in text
        assert "dead" in text
