"""Block bitmap: run operations and search."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.bitmap import Bitmap


class TestBasics:
    def test_new_bitmap_all_clear(self):
        bitmap = Bitmap(64)
        assert bitmap.set_count == 0
        assert bitmap.clear_count == 64
        assert not bitmap.test(0)

    def test_set_and_clear_range(self):
        bitmap = Bitmap(64)
        bitmap.set_range(10, 5)
        assert bitmap.set_count == 5
        assert bitmap.test(10) and bitmap.test(14)
        assert not bitmap.test(9) and not bitmap.test(15)
        bitmap.clear_range(10, 5)
        assert bitmap.set_count == 0

    def test_double_set_rejected(self):
        bitmap = Bitmap(64)
        bitmap.set_range(0, 8)
        with pytest.raises(ValueError):
            bitmap.set_range(4, 8)

    def test_clear_of_clear_rejected(self):
        bitmap = Bitmap(64)
        with pytest.raises(ValueError):
            bitmap.clear_range(0, 1)

    def test_bounds_checked(self):
        bitmap = Bitmap(16)
        with pytest.raises(IndexError):
            bitmap.set_range(10, 10)
        with pytest.raises(IndexError):
            bitmap.test(16)

    def test_empty_range_noop(self):
        bitmap = Bitmap(16)
        bitmap.set_range(0, 0)
        bitmap.clear_range(0, 0)
        assert bitmap.set_count == 0

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(0)


class TestRunSearch:
    def test_finds_first_fit(self):
        bitmap = Bitmap(32)
        bitmap.set_range(0, 4)
        bitmap.set_range(6, 2)
        assert bitmap.find_clear_run(2) == 4
        assert bitmap.find_clear_run(3) == 8

    def test_run_too_large(self):
        bitmap = Bitmap(8)
        bitmap.set_range(4, 1)
        assert bitmap.find_clear_run(5) is None
        assert bitmap.find_clear_run(9) is None

    def test_hint_next_fit_and_wrap(self):
        bitmap = Bitmap(32)
        assert bitmap.find_clear_run(4, start_hint=20) == 20
        bitmap.set_range(20, 12)
        # From hint 20 nothing fits ahead; search wraps to the front.
        assert bitmap.find_clear_run(4, start_hint=20) == 0

    def test_run_is_clear(self):
        bitmap = Bitmap(32)
        bitmap.set_range(8, 4)
        assert bitmap.run_is_clear(0, 8)
        assert not bitmap.run_is_clear(6, 4)

    def test_exact_fit_at_end(self):
        bitmap = Bitmap(16)
        bitmap.set_range(0, 12)
        assert bitmap.find_clear_run(4) == 12

    def test_zero_length_run_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(8).find_clear_run(0)

    def test_largest_clear_run(self):
        bitmap = Bitmap(32)
        assert bitmap.largest_clear_run() == 32
        bitmap.set_range(10, 2)
        assert bitmap.largest_clear_run() == 20


class TestProperties:
    @given(st.data())
    def test_alloc_free_roundtrip(self, data):
        """Random allocate/free sequences keep counts consistent and the
        found runs genuinely clear."""
        bitmap = Bitmap(128)
        live = []
        for _ in range(data.draw(st.integers(1, 40))):
            if live and data.draw(st.booleans()):
                start, length = live.pop(data.draw(st.integers(0, len(live) - 1)))
                bitmap.clear_range(start, length)
            else:
                length = data.draw(st.integers(1, 16))
                start = bitmap.find_clear_run(length)
                if start is None:
                    continue
                assert bitmap.run_is_clear(start, length)
                bitmap.set_range(start, length)
                live.append((start, length))
        assert bitmap.set_count == sum(length for _, length in live)

    @given(st.integers(1, 128))
    def test_full_bitmap_has_no_runs(self, length):
        bitmap = Bitmap(128)
        bitmap.set_range(0, 128)
        assert bitmap.find_clear_run(length) is None
