"""Run the library's docstring examples as tests."""

import doctest

import pytest

import repro.analysis.tables
import repro.fs.extent
import repro.hw.clock
import repro.hw.costmodel
import repro.hw.tlb
import repro.mem.physical
import repro.obs.metrics
import repro.paging.hugepages
import repro.units

MODULES = [
    repro.analysis.tables,
    repro.fs.extent,
    repro.hw.clock,
    repro.hw.costmodel,
    repro.hw.tlb,
    repro.mem.physical,
    repro.obs.metrics,
    repro.paging.hugepages,
    repro.units,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
