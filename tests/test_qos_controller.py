"""QosController integration: arming, charging, backpressure, OOM kills."""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan
from repro.errors import OomKilledError
from repro.kernel import Kernel, MachineConfig
from repro.mem.slab import SlabCache
from repro.mem.zeropool import ZeroPool
from repro.qos.memcg import CgroupError
from repro.sanitize import SanitizerSuite
from repro.units import GIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags


@pytest.fixture
def qos_kernel() -> Kernel:
    """Small machine with swap so direct reclaim has somewhere to evict."""
    return Kernel(
        MachineConfig(dram_bytes=64 * MIB, nvm_bytes=1 * GIB, swap_pages=4096)
    )


def _touch(kernel, process, va, pages, write=True):
    for i in range(pages):
        kernel.access(process, va + i * PAGE_SIZE, write=write)


class TestArming:
    def test_arm_sets_both_references(self, kernel):
        controller = kernel.arm_qos()
        assert kernel.qos is controller
        assert kernel.counters.qos is controller
        kernel.disarm_qos()
        assert kernel.qos is None
        assert kernel.counters.qos is None

    def test_spawn_cgroup_requires_armed_controller(self, kernel):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="arm_qos"):
            kernel.spawn("orphan", cgroup="nowhere")

    def test_duplicate_cgroup_name_rejected(self, kernel):
        qos = kernel.arm_qos()
        qos.cgroup("tenant")
        with pytest.raises(CgroupError, match="already exists"):
            qos.cgroup("tenant")

    def test_limitless_arming_is_bit_identical(self):
        """The golden-figure claim in miniature: arming with only the
        limitless root changes no simulated time and no hot counters."""

        def run(armed: bool):
            kernel = Kernel(MachineConfig(dram_bytes=64 * MIB))
            if armed:
                kernel.arm_qos()
            process = kernel.spawn("w")
            va = kernel.syscalls(process).mmap(
                32 * PAGE_SIZE, flags=MapFlags.PRIVATE
            )
            _touch(kernel, process, va, 32)
            return kernel.clock.now, kernel.counters.get("fault_minor")

        assert run(armed=False) == run(armed=True)


class TestCharging:
    def test_usage_tracks_faults_and_drains_on_exit(self, kernel):
        qos = kernel.arm_qos()
        cg = qos.cgroup("tenant")
        process = kernel.spawn("w", cgroup=cg)
        va = kernel.syscalls(process).mmap(16 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, process, va, 16)
        # 16 data frames plus the page-table nodes backing them.
        assert cg.usage_frames >= 16
        assert qos.root.usage_frames >= cg.usage_frames
        process.exit()
        assert cg.usage_frames == 0
        assert qos.root.usage_frames == 0

    def test_frames_allocated_before_arming_never_uncharge(self, kernel):
        process = kernel.spawn("early")
        va = kernel.syscalls(process).mmap(4 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, process, va, 4)
        qos = kernel.arm_qos()
        process.exit()  # frees frames the controller never charged
        assert qos.root.usage_frames == 0

    def test_zeropool_parks_on_root_until_taken(self, kernel):
        qos = kernel.arm_qos()
        cg = qos.cgroup("tenant")
        process = kernel.spawn("w", cgroup=cg)
        qos.enter_pid(process.pid)
        pool = ZeroPool(
            kernel.dram_buddy,
            target_size=4,
            clock=kernel.clock,
            costs=kernel.costs,
            counters=kernel.counters,
        )
        root_before = qos.root.usage_frames
        pool.refill()
        # Background refill is never billed to the tenant that ran it.
        assert cg.usage_frames == 0
        assert qos.root.usage_frames == root_before + 4
        pfn = pool.take()
        assert cg.usage_frames == 1
        kernel.dram_buddy.free(pfn)
        assert cg.usage_frames == 0

    def test_slab_growth_lands_on_kmem_ledger(self, kernel):
        qos = kernel.arm_qos()
        cg = qos.cgroup("tenant")
        process = kernel.spawn("w", cgroup=cg)
        qos.enter_pid(process.pid)
        cache = SlabCache(
            "t-objs",
            object_size=256,
            buddy=kernel.dram_buddy,
            clock=kernel.clock,
            costs=kernel.costs,
            counters=kernel.counters,
        )
        addr = cache.alloc()
        assert cg.kmem_frames == 1
        assert qos.root.kmem_frames == 1
        cache.free(addr)  # last object out: the slab reaps
        assert cg.kmem_frames == 0

    def test_pmfs_blocks_land_on_nvm_ledger(self, kernel):
        qos = kernel.arm_qos()
        cg = qos.cgroup("tenant")
        process = kernel.spawn("w", cgroup=cg)
        sys_calls = kernel.syscalls(process)
        fd = sys_calls.open(kernel.pmfs, "/data", create=True, size=4 * PAGE_SIZE)
        assert cg.nvm_blocks >= 4
        sys_calls.close(fd)
        sys_calls.unlink(kernel.pmfs, "/data")
        assert cg.nvm_blocks == 0

    def test_fork_child_inherits_parent_cgroup(self, kernel):
        qos = kernel.arm_qos()
        cg = qos.cgroup("tenant")
        parent = kernel.spawn("parent", cgroup=cg)
        child = kernel.fork(parent)
        assert qos.cgroup_of(child.pid) is cg
        assert child.pid in cg.pids


class TestHighWatermark:
    def test_breach_runs_reclaim_and_relieves_pressure(self, qos_kernel):
        kernel = qos_kernel
        qos = kernel.arm_qos()
        cg = qos.cgroup("tenant", high=24)
        process = kernel.spawn("w", track_lru=True, cgroup=cg)
        va = kernel.syscalls(process).mmap(64 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, process, va, 64)
        assert kernel.counters.get("qos_watermark_high") > 0
        assert kernel.counters.get("qos_reclaim_batch") > 0
        assert kernel.counters.get("swap_out") > 0
        assert cg.events["reclaim"] > 0
        # Reclaim kept the tenant near its watermark instead of letting
        # it grow to the full 64-page footprint.
        assert cg.usage_frames < 64

    def test_unreclaimable_breach_throttles_with_psi(self, qos_kernel):
        kernel = qos_kernel
        qos = kernel.arm_qos()
        cg = qos.cgroup("tenant", high=8)
        process = kernel.spawn("w", cgroup=cg)  # no LRU: nothing evictable
        before = kernel.clock.now
        va = kernel.syscalls(process).mmap(24 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, process, va, 24)
        assert kernel.counters.get("qos_throttle_stall") > 0
        assert cg.events["throttle"] > 0
        # The stall is charged to the simulated clock and shows as PSI.
        assert kernel.clock.now > before
        assert cg.psi.full_total_ns > 0
        some, full = cg.psi.avg10(kernel.clock.now)
        assert full > 0.0

    def test_throttle_backoff_grows_with_streak(self, qos_kernel):
        kernel = qos_kernel
        qos = kernel.arm_qos()
        cg = qos.cgroup("tenant", high=4)
        process = kernel.spawn("w", cgroup=cg)
        va = kernel.syscalls(process).mmap(16 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, process, va, 16)
        assert cg.throttle_streak > 1
        # The linear stall is capped, never unbounded.
        assert (
            qos.config.throttle_base_ns * cg.throttle_streak
            >= qos.config.throttle_base_ns * 2
        )

    def test_chaos_error_at_reclaim_site_is_absorbed(self, qos_kernel):
        kernel = qos_kernel
        kernel.arm_chaos(FaultPlan.fault_at_site("qos.reclaim", "error"))
        qos = kernel.arm_qos()
        cg = qos.cgroup("tenant", high=8)
        process = kernel.spawn("w", track_lru=True, cgroup=cg)
        va = kernel.syscalls(process).mmap(24 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, process, va, 24)  # must not raise
        assert kernel.counters.get("qos_reclaim_error") > 0
        assert process.alive


class TestOomKiller:
    def test_kill_confined_to_offending_cgroup(self, qos_kernel):
        kernel = qos_kernel
        qos = kernel.arm_qos()
        noisy = qos.cgroup("noisy", max_frames=24)
        bystander = kernel.spawn("bystander")
        victim = kernel.spawn("victim", cgroup=noisy)
        offender = kernel.spawn("offender", cgroup=noisy)
        va_v = kernel.syscalls(victim).mmap(32 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, victim, va_v, 16)
        va_o = kernel.syscalls(offender).mmap(32 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, offender, va_o, 16)
        # largest_rss picked the non-running tenant inside the cgroup;
        # the bystander outside the cgroup was never a candidate.
        assert not victim.alive
        assert bystander.alive
        assert kernel.counters.get("qos_oom_kill") >= 1
        for kill in qos.kills:
            assert kill["offending"] == "noisy"
            assert kill["cgroup"] == "noisy"

    def test_lone_offender_dies_at_next_safe_point(self, qos_kernel):
        kernel = qos_kernel
        qos = kernel.arm_qos()
        cg = qos.cgroup("noisy", max_frames=12)
        process = kernel.spawn("leaker", cgroup=cg)
        va = kernel.syscalls(process).mmap(64 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        # The breach happens mid-access: the killer must not tear the
        # faulting process down under its own fault handler.  It is
        # doomed instead and dies at the next syscall/access entry.
        with pytest.raises(OomKilledError):
            _touch(kernel, process, va, 64)
        assert not process.alive
        assert any(kill["deferred"] for kill in qos.kills)
        # Teardown went through the standard exit path: every charged
        # frame drained back out.
        assert cg.usage_frames == 0
        assert qos.root.usage_frames == 0

    def test_victimless_breach_is_counted_not_fatal(self, qos_kernel):
        kernel = qos_kernel
        qos = kernel.arm_qos()
        cg = qos.cgroup("ghost", max_frames=0)
        qos.current = cg  # charge context with no attached processes
        pfn = kernel.dram_buddy.alloc(0)
        assert kernel.counters.get("qos_oom_victimless") == 1
        kernel.dram_buddy.free(pfn)

    def test_oldest_policy_kills_smallest_pid(self, qos_kernel):
        kernel = qos_kernel
        qos = kernel.arm_qos()
        cg = qos.cgroup("fifo", max_frames=20, oom_policy="oldest")
        first = kernel.spawn("first", cgroup=cg)
        second = kernel.spawn("second", cgroup=cg)
        va1 = kernel.syscalls(first).mmap(16 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, first, va1, 10)
        va2 = kernel.syscalls(second).mmap(16 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, second, va2, 12)
        assert not first.alive
        assert second.alive

    def test_kills_survive_sanitizer_census(self, qos_kernel):
        """FrameSan's leak census stays clean across OOM kills."""
        kernel = qos_kernel
        kernel.arm_sanitizers(SanitizerSuite())
        qos = kernel.arm_qos()
        cg = qos.cgroup("noisy", max_frames=16)
        victim = kernel.spawn("victim", cgroup=cg)
        offender = kernel.spawn("offender", cgroup=cg)
        va_v = kernel.syscalls(victim).mmap(16 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, victim, va_v, 12)
        va_o = kernel.syscalls(offender).mmap(16 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, offender, va_o, 12)
        assert kernel.counters.get("qos_oom_kill") >= 1
        assert kernel.counters.get("sanitize_violation") == 0

    def test_chaos_covers_oom_kill_site(self, qos_kernel):
        kernel = qos_kernel
        plan = FaultPlan.counting()
        kernel.arm_chaos(plan)
        qos = kernel.arm_qos()
        cg = qos.cgroup("noisy", max_frames=16)
        a = kernel.spawn("a", cgroup=cg)
        b = kernel.spawn("b", cgroup=cg)
        va_a = kernel.syscalls(a).mmap(16 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, a, va_a, 12)
        va_b = kernel.syscalls(b).mmap(16 * PAGE_SIZE, flags=MapFlags.PRIVATE)
        _touch(kernel, b, va_b, 12)
        assert plan.census().get("qos.oom_kill", 0) >= 1


class TestReporting:
    def test_report_snapshots_hierarchy_and_kills(self, qos_kernel):
        kernel = qos_kernel
        qos = kernel.arm_qos()
        qos.cgroup("tenant", high=100, max_frames=200)
        report = qos.report()
        names = [cg["name"] for cg in report["cgroups"]]
        assert names == ["root", "tenant"]
        tenant = report["cgroups"][1]
        assert tenant["high_frames"] == 100
        assert tenant["max_frames"] == 200
        assert "psi" in tenant and "some_avg10" in tenant["psi"]
        assert report["kills"] == []
