"""Interprocedural O(1) conformance: repro.lint.flow and friends.

Covers the call-graph builder, the transitive cost summaries, the
must-call protocol checks, the planted controls, stale-suppression
detection, the flow section of ``lint_report.json``, the flow baseline
round-trip — and the two intraprocedural false negatives this pass
exists to close, pinned as regression tests.
"""

import json
import re
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.lint.astcheck import lint_tree
from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.callgraph import build_callgraph
from repro.lint.flow import ALLOWABLE_RULES, CONTROLS, run_flow
from repro.lint.protocols import (
    RULE_FLOW_PERSIST,
    RULE_STALE_TRANSLATION,
    compute_protocols,
)
from repro.lint.report import REPORT_VERSION, build_report, render_text
from repro.lint.summaries import (
    RULE_COST_EXCEEDS,
    RULE_UNDECLARED,
    Cost,
    SummaryTable,
)

REPRO_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def make_pkg(tmp_path: Path, files: dict) -> Path:
    """Materialise a throwaway package for the analyses to chew on."""
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        path = pkg / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return pkg


def flow(pkg: Path, with_intra: bool = False):
    intra_used = None
    if with_intra:
        intra_used = {
            p: set(lines)
            for p, lines in lint_tree(pkg).used_allows.items()
        }
    return run_flow(pkg, package="pkg", intra_used=intra_used)


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------
class TestCallGraph:
    def test_module_function_resolution(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            def caller(x):
                return helper(x)

            def helper(x):
                return x
        """})
        graph = build_callgraph(pkg, package="pkg")
        assert "pkg.mod.helper" in list(graph.callees("pkg.mod.caller"))

    def test_self_method_resolution(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            class Thing:
                def outer(self):
                    return self.inner()

                def inner(self):
                    return 1
        """})
        graph = build_callgraph(pkg, package="pkg")
        assert "pkg.mod.Thing.inner" in list(
            graph.callees("pkg.mod.Thing.outer")
        )

    def test_annotated_attribute_dispatch(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            class Dep:
                def run(self):
                    return 1

            class Owner:
                def __init__(self, dep: Dep) -> None:
                    self._dep = dep

                def go(self):
                    return self._dep.run()
        """})
        graph = build_callgraph(pkg, package="pkg")
        assert "pkg.mod.Dep.run" in list(graph.callees("pkg.mod.Owner.go"))

    def test_cross_module_resolution(self, tmp_path):
        pkg = make_pkg(tmp_path, {
            "a.py": """
                from pkg.b import worker

                def caller(x):
                    return worker(x)
            """,
            "b.py": """
                def worker(x):
                    return x
            """,
        })
        graph = build_callgraph(pkg, package="pkg")
        assert "pkg.b.worker" in list(graph.callees("pkg.a.caller"))

    def test_defaulting_ifexp_in_init_resolves(self, tmp_path):
        """``self._dep = dep if dep is not None else Dep()`` — both arms
        agree on the type, so the attribute is typed."""
        pkg = make_pkg(tmp_path, {"mod.py": """
            class Dep:
                def run(self):
                    return 1

            class Owner:
                def __init__(self, dep=None):
                    self._dep = dep if dep is not None else Dep()

                def go(self):
                    return self._dep.run()
        """})
        graph = build_callgraph(pkg, package="pkg")
        assert "pkg.mod.Dep.run" in list(graph.callees("pkg.mod.Owner.go"))

    def test_annotated_ifexp_arm_resolves(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            class Dep:
                def run(self):
                    return 1

            class Owner:
                def __init__(self, dep: Dep, alt: Dep) -> None:
                    self._dep = alt if alt is not None else dep

                def go(self):
                    return self._dep.run()
        """})
        graph = build_callgraph(pkg, package="pkg")
        assert "pkg.mod.Dep.run" in list(graph.callees("pkg.mod.Owner.go"))

    def test_module_level_singleton_resolves(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            class Dep:
                def run(self):
                    return 1

            SINGLETON = Dep()

            def go():
                return SINGLETON.run()
        """})
        graph = build_callgraph(pkg, package="pkg")
        assert graph.module_globals["pkg.mod"]["SINGLETON"] == "pkg.mod.Dep"
        assert "pkg.mod.Dep.run" in list(graph.callees("pkg.mod.go"))

    def test_dot_export_mentions_edges(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            def caller(x):
                return helper(x)

            def helper(x):
                return x
        """})
        graph = build_callgraph(pkg, package="pkg")
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        assert "pkg.mod.caller" in dot
        assert "->" in dot


# ---------------------------------------------------------------------------
# Cost summaries
# ---------------------------------------------------------------------------
class TestSummaries:
    def test_linear_helper_propagates_to_o1_caller(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import o1

            @o1
            def entry(pages):
                return helper(pages)

            def helper(pages):
                total = 0
                for page in pages:
                    total += page
                return total
        """})
        graph = build_callgraph(pkg, package="pkg")
        table = SummaryTable(graph)
        assert table.summaries["pkg.mod.helper"].cost is Cost.LINEAR
        assert table.summaries["pkg.mod.entry"].cost is Cost.LINEAR
        chain = table.witness_chain("pkg.mod.entry")
        assert chain, "exceeding summary must carry a witness chain"

    def test_constant_callee_in_loop_scales_to_linear(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import o1

            @o1
            def tick():
                return 1

            def walk(pages):
                for page in pages:
                    tick()
        """})
        graph = build_callgraph(pkg, package="pkg")
        table = SummaryTable(graph)
        assert table.summaries["pkg.mod.walk"].cost is Cost.LINEAR

    def test_log_callee_in_loop_scales_to_linearithmic(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import complexity

            @complexity("log n")
            def probe(x):
                return x

            def walk(pages):
                for page in pages:
                    probe(page)
        """})
        graph = build_callgraph(pkg, package="pkg")
        table = SummaryTable(graph)
        assert table.summaries["pkg.mod.walk"].cost is Cost.LINEARITHMIC

    def test_mutual_recursion_is_unbounded(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            def ping(x):
                return pong(x)

            def pong(x):
                return ping(x)
        """})
        graph = build_callgraph(pkg, package="pkg")
        table = SummaryTable(graph)
        assert table.summaries["pkg.mod.ping"].cost is Cost.UNBOUNDED
        assert table.summaries["pkg.mod.pong"].cost is Cost.UNBOUNDED


# ---------------------------------------------------------------------------
# Regression: the intraprocedural false negatives this pass closes
# ---------------------------------------------------------------------------
class TestIntraFalseNegatives:
    def test_loop_in_undeclared_callee(self, tmp_path):
        """Intra sees a single call in the @o1 body and stays silent; the
        flow pass walks into the helper and finds the loop."""
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import o1

            @o1
            def entry(pages):
                return helper(pages)

            def helper(pages):
                total = 0
                for page in pages:
                    total += page
                return total
        """})
        intra = lint_tree(pkg)
        assert intra.violations == []
        result = flow(pkg)
        findings = [f for f in result.findings if f.rule == RULE_COST_EXCEEDS]
        assert [f.function for f in findings] == ["pkg.mod.entry"]
        assert any("helper" in hop.fid for hop in findings[0].chain)

    def test_commit_in_helper_persist(self, tmp_path):
        """The apply site carries the classic "caller commits" allow, so
        intra is silent — and no caller on the path ever commits."""
        pkg = make_pkg(tmp_path, {"mod.py": """
            def root_op(fs):
                _helper_apply(fs)

            def _helper_apply(fs):
                fs._apply_alloc(None)  # o1: allow(persist-outside-txn) -- caller commits
        """})
        intra = lint_tree(pkg)
        assert intra.violations == []
        result = flow(pkg)
        findings = [f for f in result.findings if f.rule == RULE_FLOW_PERSIST]
        assert any(f.function == "pkg.mod.root_op" for f in findings)

    def test_commit_on_path_stays_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            def root_op(fs):
                fs._journal_commit()
                _helper_apply(fs)

            def _helper_apply(fs):
                fs._apply_alloc(None)  # o1: allow(persist-outside-txn) -- caller commits
        """})
        result = flow(pkg)
        assert [f for f in result.findings if f.rule == RULE_FLOW_PERSIST] == []


# ---------------------------------------------------------------------------
# Must-call protocol: page-table mutation vs TLB invalidation
# ---------------------------------------------------------------------------
_SYSCALL_FIXTURE = """
    class PageTable:
        def unmap(self, va):
            return va

    class Tlb:
        def flush_all(self):
            return 0

    class Syscalls:
        def __init__(self, pt: PageTable, tlb: Tlb) -> None:
            self._pt = pt
            self._tlb = tlb

        def munmap(self, va):
            self._pt.unmap(va)
            {epilogue}
"""


class TestStaleTranslationProtocol:
    def test_mutation_without_invalidation_flagged(self, tmp_path):
        pkg = make_pkg(tmp_path, {
            "mod.py": _SYSCALL_FIXTURE.format(epilogue="return va"),
        })
        result = flow(pkg)
        findings = [
            f for f in result.findings if f.rule == RULE_STALE_TRANSLATION
        ]
        assert [f.function for f in findings] == ["pkg.mod.Syscalls.munmap"]
        assert findings[0].chain, "protocol finding must show the mutation"

    def test_mutation_with_invalidation_clean(self, tmp_path):
        pkg = make_pkg(tmp_path, {
            "mod.py": _SYSCALL_FIXTURE.format(
                epilogue="self._tlb.flush_all()\n            return va"
            ),
        })
        result = flow(pkg)
        assert [
            f for f in result.findings if f.rule == RULE_STALE_TRANSLATION
        ] == []

    def test_protocol_effects_computed_per_function(self, tmp_path):
        pkg = make_pkg(tmp_path, {
            "mod.py": _SYSCALL_FIXTURE.format(epilogue="return va"),
        })
        graph = build_callgraph(pkg, package="pkg")
        protocols = compute_protocols(graph)
        effect = protocols.tlb["pkg.mod.Syscalls.munmap"]
        assert effect.gen and not effect.kill


# ---------------------------------------------------------------------------
# The real tree: clean gate, verified controls, mutant detection
# ---------------------------------------------------------------------------
class TestRealTree:
    @pytest.fixture(scope="class")
    def real_flow(self):
        intra = lint_tree(REPRO_ROOT)
        used = {p: set(lines) for p, lines in intra.used_allows.items()}
        return intra, run_flow(REPRO_ROOT, intra_used=used)

    def test_tree_is_clean_with_empty_baseline(self, real_flow):
        intra, result = real_flow
        assert intra.violations == []
        assert result.findings == []

    def test_no_stale_suppressions(self, real_flow):
        _, result = real_flow
        assert result.stale_suppressions == []

    def test_planted_controls_fire_with_chains(self, real_flow):
        _, result = real_flow
        fired = {(f.function, f.rule) for f in result.controls_verified}
        assert fired == set(CONTROLS)
        for finding in result.controls_verified:
            assert finding.chain, (
                f"control {finding.function} must carry its call chain"
            )

    def test_resolution_ratio_floor(self, real_flow):
        """Pin the call-site resolution ratio so regressions in the
        resolver (attribute typing, module globals, IfExp arms) show up
        as a number going down, not as silently thinner coverage.

        Re-pinned from 0.39 when repro.qos landed: its ~450 new sites
        skew toward builtins and container methods (deliberately
        unresolvable), measuring 0.3874 with the resolver unchanged.
        """
        _, result = real_flow
        ratio = result.sites_resolved / result.sites_total
        assert ratio >= 0.385, (
            f"resolution ratio fell to {ratio:.4f} "
            f"({result.sites_resolved}/{result.sites_total})"
        )

    def test_cpu_tlb_attributes_are_typed(self, real_flow):
        """The hot-path certificate depends on these exact attribute
        types: Cpu._translate's tlb calls must resolve."""
        _, result = real_flow
        graph = result.graph
        cpu = next(
            cid for cid in graph.classes if cid == "repro.hw.cpu.Cpu"
        )
        attrs = graph.classes[cpu].attr_types
        assert attrs.get("_tlb") == "repro.hw.tlb.Tlb"
        assert attrs.get("_rtlb") == "repro.hw.rtlb.RangeTlb"

    def test_entries_cover_syscalls_and_kernel(self, real_flow):
        _, result = real_flow
        names = set(result.entries)
        assert "repro.kernel.kernel.Kernel.fork" in names
        assert "repro.kernel.syscalls.Syscalls.mmap" in names

    def test_munmap_without_invalidation_caught(self, tmp_path):
        """Mutant: drop the TLB shootdown from AddressSpace._munmap and
        the stale-translation protocol must go red statically."""
        mutant_root = tmp_path / "repro"
        shutil.copytree(REPRO_ROOT, mutant_root)
        target = mutant_root / "vm" / "addrspace.py"
        source = target.read_text()
        mutated = re.sub(
            r"\n        if self\.cpu is not None:\n"
            r"            self\.cpu\.invalidate_space_range\("
            r"addr, length, asid=self\._asid\)\n",
            "\n",
            source,
        )
        assert mutated != source, "mutation target not found"
        target.write_text(mutated)
        result = run_flow(mutant_root)
        stale = [
            f for f in result.findings if f.rule == RULE_STALE_TRANSLATION
        ]
        assert any(
            f.function == "repro.kernel.syscalls.Syscalls.munmap"
            for f in stale
        ), f"expected Syscalls.munmap flagged, got {[f.function for f in stale]}"


# ---------------------------------------------------------------------------
# Stale-suppression detection
# ---------------------------------------------------------------------------
class TestStaleSuppressions:
    def test_dead_allow_reported(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import o1

            @o1
            def fine():
                # o1: allow(o1-size-loop) -- obsolete: the loop is long gone
                return 1
        """})
        result = flow(pkg, with_intra=True)
        assert len(result.stale_suppressions) == 1
        stale = result.stale_suppressions[0]
        assert stale.rules == ("o1-size-loop",)
        assert stale.path.endswith("mod.py")

    def test_used_allow_not_reported(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import o1

            @o1
            def clamp(entries):
                total = 0
                # o1: allow(o1-size-loop) -- bounded table by construction
                for entry in entries:
                    total += entry
                return total
        """})
        result = flow(pkg, with_intra=True)
        assert result.stale_suppressions == []


# ---------------------------------------------------------------------------
# Report schema and baseline round-trip
# ---------------------------------------------------------------------------
class TestFlowReport:
    def _fixture_result(self, tmp_path):
        pkg = make_pkg(tmp_path, {"mod.py": """
            from repro.lint import o1

            @o1
            def entry(pages):
                return helper(pages)

            def helper(pages):
                total = 0
                for page in pages:
                    total += page
                return total
        """})
        return lint_tree(pkg), flow(pkg)

    def test_flow_section_schema(self, tmp_path):
        intra, result = self._fixture_result(tmp_path)
        outcome = apply_baseline(intra.violations, [])
        flow_outcome = apply_baseline(result.findings, [])
        report = build_report(
            intra, outcome, flow=result, flow_outcome=flow_outcome
        )
        assert report["version"] == REPORT_VERSION == 3
        section = report["flow"]
        assert set(section) == {
            "entries", "files", "functions", "call_sites", "findings",
            "baseline_suppressed", "stale_baseline_entries",
            "controls_verified", "stale_suppressions",
        }
        assert section["call_sites"]["resolved"] <= section["call_sites"]["total"]
        (finding,) = [
            f for f in section["findings"]
            if f["rule"] == RULE_COST_EXCEEDS
        ]
        assert finding["function"] == "pkg.mod.entry"
        assert finding["chain"], "chain must be serialised"
        hop = finding["chain"][-1]
        assert set(hop) == {"function", "path", "line", "note"}

    def test_render_text_shows_chain(self, tmp_path):
        intra, result = self._fixture_result(tmp_path)
        outcome = apply_baseline(intra.violations, [])
        flow_outcome = apply_baseline(result.findings, [])
        text = render_text(
            intra, outcome, flow=result, flow_outcome=flow_outcome
        )
        assert "o1 flow:" in text
        assert "FINDING" in text
        assert "pkg.mod.helper" in text  # the witness hop, not just the root

    def test_baseline_round_trip(self, tmp_path):
        _, result = self._fixture_result(tmp_path)
        exceed = [
            f for f in result.findings if f.rule == RULE_COST_EXCEEDS
        ]
        baseline_path = tmp_path / "flow_baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [
                {
                    "function": f.function,
                    "rule": f.rule,
                    "reason": "pinned for the round-trip test",
                }
                for f in exceed
            ],
        }))
        entries = load_baseline(baseline_path, known_rules=ALLOWABLE_RULES)
        outcome = apply_baseline(result.findings, entries)
        assert outcome.suppressed == exceed
        assert outcome.stale == []
        assert all(f.rule != RULE_COST_EXCEEDS for f in outcome.new)

    def test_baseline_stale_entry_detected(self, tmp_path):
        _, result = self._fixture_result(tmp_path)
        baseline_path = tmp_path / "flow_baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "function": "pkg.mod.gone",
                "rule": RULE_UNDECLARED,
                "reason": "the function this pinned was deleted",
            }],
        }))
        entries = load_baseline(baseline_path, known_rules=ALLOWABLE_RULES)
        outcome = apply_baseline(result.findings, entries)
        assert [e.function for e in outcome.stale] == ["pkg.mod.gone"]

    def test_baseline_rejects_unknown_rule(self, tmp_path):
        baseline_path = tmp_path / "flow_baseline.json"
        baseline_path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "function": "pkg.mod.f",
                "rule": "flow-not-a-rule",
                "reason": "typo",
            }],
        }))
        with pytest.raises(ValueError, match="unknown rule"):
            load_baseline(baseline_path, known_rules=ALLOWABLE_RULES)
