"""Cache-hierarchy model: hit levels, LRU, technology pricing."""

import pytest

from repro.hw.cache import CacheModel
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.units import CACHE_LINE


def make_cache(l1_lines=4, llc_lines=16, tech=MemoryTechnology.DRAM):
    clock = SimClock()
    counters = EventCounters()
    costs = CostModel()
    cache = CacheModel(
        clock,
        costs,
        counters,
        tech_of=lambda _pa: tech,
        l1_lines=l1_lines,
        llc_lines=llc_lines,
    )
    return cache, clock, counters, costs


class TestReferenceCosts:
    def test_cold_miss_costs_dram(self):
        cache, _, _, costs = make_cache()
        assert cache.reference(0) == costs.dram_read_ns

    def test_cold_write_miss_costs_dram_write(self):
        cache, _, _, costs = make_cache()
        assert cache.reference(0, write=True) == costs.dram_write_ns

    def test_nvm_miss_costs_nvm(self):
        cache, _, _, costs = make_cache(tech=MemoryTechnology.NVM)
        assert cache.reference(0) == costs.nvm_read_ns
        assert cache.reference(CACHE_LINE, write=True) == costs.nvm_write_ns

    def test_second_reference_hits_l1(self):
        cache, _, _, costs = make_cache()
        cache.reference(0)
        assert cache.reference(0) == costs.l1_hit_ns

    def test_same_line_different_bytes_hit(self):
        cache, _, _, costs = make_cache()
        cache.reference(128)
        assert cache.reference(128 + CACHE_LINE - 1) == costs.l1_hit_ns

    def test_l1_eviction_falls_to_llc(self):
        cache, _, _, costs = make_cache(l1_lines=2, llc_lines=64)
        cache.reference(0)
        cache.reference(CACHE_LINE)
        cache.reference(2 * CACHE_LINE)  # evicts line 0 from L1
        assert cache.reference(0) == costs.llc_hit_ns

    def test_llc_eviction_back_to_memory(self):
        cache, _, _, costs = make_cache(l1_lines=1, llc_lines=2)
        for index in range(4):
            cache.reference(index * CACHE_LINE)
        assert cache.reference(0) == costs.dram_read_ns

    def test_clock_advances_by_reference_cost(self):
        cache, clock, _, costs = make_cache()
        cache.reference(0)
        cache.reference(0)
        assert clock.now == costs.dram_read_ns + costs.l1_hit_ns


class TestCounters:
    def test_hit_miss_counters(self):
        cache, _, counters, _ = make_cache()
        cache.reference(0)
        cache.reference(0)
        assert counters.get("cache_miss") == 1
        assert counters.get("cache_l1_hit") == 1


class TestRangeAndMaintenance:
    def test_touch_range_covers_every_line(self):
        cache, _, counters, _ = make_cache(l1_lines=64, llc_lines=256)
        cache.touch_range(0, 4 * CACHE_LINE)
        assert counters.get("cache_miss") == 4

    def test_touch_range_zero_size(self):
        cache, clock, _, _ = make_cache()
        assert cache.touch_range(0, 0) == 0
        assert clock.now == 0

    def test_flush_makes_cold(self):
        cache, _, _, costs = make_cache()
        cache.reference(0)
        cache.flush()
        assert cache.reference(0) == costs.dram_read_ns

    def test_evict_range(self):
        cache, _, _, costs = make_cache()
        cache.reference(0)
        cache.reference(CACHE_LINE)
        cache.evict_range(0, CACHE_LINE)
        assert not cache.is_cached(0)
        assert cache.is_cached(CACHE_LINE)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            CacheModel(SimClock(), CostModel(), EventCounters(), l1_lines=0)

    def test_warm_range_free_and_llc_resident(self):
        cache, clock, _, costs = make_cache(l1_lines=2, llc_lines=64)
        cache.warm_range(0, 8 * CACHE_LINE)
        assert clock.now == 0  # warming charges nothing
        # Warmed lines hit the LLC, not L1.
        assert cache.reference(0) == costs.llc_hit_ns

    def test_warm_range_does_not_overflow_l1(self):
        cache, _, _, costs = make_cache(l1_lines=2, llc_lines=64)
        cache.reference(1024)  # L1-resident line
        cache.warm_range(0, 32 * CACHE_LINE)
        assert cache.reference(1024) == costs.l1_hit_ns  # undisturbed
