"""Persistence marking and crash recovery."""

import pytest

from repro.core.fom import FileOnlyMemory, PersistenceManager
from repro.errors import FileSystemError
from repro.units import KIB, MIB, PAGE_SIZE


@pytest.fixture
def env(aligned_kernel):
    kernel = aligned_kernel
    fom = FileOnlyMemory(kernel)
    return kernel, fom, PersistenceManager(fom)


class TestMarking:
    def test_mark_persistent_flips_inode(self, env):
        kernel, fom, pm = env
        region = fom.allocate(kernel.spawn("p"), 1 * MIB, name="/d")
        assert not region.inode.persistent
        pm.mark_persistent(region)
        assert region.inode.persistent and region.persistent

    def test_mark_volatile(self, env):
        kernel, fom, pm = env
        region = fom.allocate(
            kernel.spawn("p"), 1 * MIB, name="/d", persistent=True
        )
        pm.mark_volatile(region)
        assert not region.inode.persistent

    def test_marking_is_o1(self, env):
        kernel, fom, pm = env
        process = kernel.spawn("p")
        small = fom.allocate(process, 1 * MIB, name="/s")
        big = fom.allocate(process, 256 * MIB, name="/b")
        with kernel.measure() as m_small:
            pm.mark_persistent(small)
        with kernel.measure() as m_big:
            pm.mark_persistent(big)
        assert m_small.elapsed_ns == m_big.elapsed_ns

    def test_tmpfs_region_cannot_persist(self, aligned_kernel):
        kernel = aligned_kernel
        fom = FileOnlyMemory(kernel, fs=kernel.tmpfs)
        pm = PersistenceManager(fom)
        region = fom.allocate(kernel.spawn("p"), 1 * MIB, name="/v")
        with pytest.raises(FileSystemError):
            pm.mark_persistent(region)


class TestRecovery:
    def test_persistent_files_survive(self, env):
        kernel, fom, pm = env
        process = kernel.spawn("p")
        keep = fom.allocate(process, 1 * MIB, name="/keep", persistent=True)
        fom.allocate(process, 1 * MIB, name="/lose")
        kernel.crash()
        report = pm.recover()
        assert report.survivors == ["/keep"]
        assert "/lose" in report.erased
        assert fom.fs.exists("/keep")
        assert not fom.fs.exists("/lose")

    def test_volatile_erase_is_linear_by_default(self, env):
        kernel, fom, pm = env
        process = kernel.spawn("p")
        fom.allocate(process, 2 * MIB, name="/small-v")
        fom.allocate(process, 64 * MIB, name="/big-v")
        kernel.crash()
        report = pm.recover()
        # Linear erase: time proportional to total volatile pages.
        expected_pages = (2 * MIB + 64 * MIB) // PAGE_SIZE
        # There are also the anon-dir bookkeeping files... only named
        # regions exist here, so the count is exact.
        assert report.erase_ns >= expected_pages * kernel.costs.zero_line_ns
        assert not report.constant_time_erase

    def test_crypto_erase_is_constant_per_file(self, aligned_kernel):
        kernel = aligned_kernel
        fom = FileOnlyMemory(kernel)
        pm = PersistenceManager(fom, crypto_erase=True)
        process = kernel.spawn("p")
        fom.allocate(process, 256 * MIB, name="/huge-v")
        kernel.crash()
        report = pm.recover()
        assert report.constant_time_erase
        assert report.erase_ns < 100_000  # not proportional to 256 MiB

    def test_reopen_persistent_data_after_crash(self, env):
        kernel, fom, pm = env
        process = kernel.spawn("writer")
        region = fom.allocate(process, 1 * MIB, name="/db", persistent=True)
        with fom.fs.open("/db") as handle:
            handle.pwrite(0, b"state")
        kernel.crash()
        pm.recover()
        survivor = kernel.spawn("reader")
        reopened = fom.open_region(survivor, "/db")
        kernel.access(survivor, reopened.vaddr)
        with fom.fs.open("/db") as handle:
            assert handle.pread(0, 5) == b"state"

    def test_recover_on_volatile_fs_is_trivial(self, aligned_kernel):
        kernel = aligned_kernel
        fom = FileOnlyMemory(kernel, fs=kernel.tmpfs)
        pm = PersistenceManager(fom)
        fom.allocate(kernel.spawn("p"), 1 * MIB, name="/x")
        kernel.crash()
        report = pm.recover()
        assert report.survivors == [] and report.erased == []

    def test_premap_cache_pruned_on_recover(self, env):
        kernel, fom, pm = env
        process = kernel.spawn("p")
        from repro.core.fom import MapStrategy

        fom.allocate(process, 2 * MIB, name="/pm", strategy=MapStrategy.PREMAP)
        assert fom.ptcache.cached_files == 1
        kernel.crash()
        pm.recover()
        assert fom.ptcache.cached_files == 0
