"""Differential fork/munmap harness: eager+page vs cow+extent.

Hypothesis generates random traces of mmap / touch / fork / write /
munmap / exit operations and replays each trace against two machines
that differ only in policy:

* the paper's motivating baseline — ``fork_policy="eager"`` (per-PTE
  copies) with ``munmap_policy="page"`` (per-PTE teardown);
* the O(1) configuration — ``fork_policy="cow"`` (per-window subtree
  shares) with ``munmap_policy="extent"`` (whole-subtree drops).

The oracles:

1. **Observable memory is identical.**  Every write stamps a trace-unique
   token onto the physical frame it lands in; every read reports the
   token its physical frame carries (or "zero" for never-written pages).
   COW sharing, COW breaks, and teardown ordering may differ wildly
   between the two machines, but the sequence of observed tokens must be
   byte-for-byte the same.
2. **Identical frame census at teardown.**  After every process exits,
   both machines return every DRAM frame — data frames, COW copies, and
   page-table node frames — so the buddy allocators land on the same
   free count (the starting one) and FrameSan's leak accounting reports
   zero outstanding blocks on both.

The full sanitizer suite is armed in halt mode on both machines, so any
stale TLB entry, dangling translation, double free, or use-after-free
the COW/extent paths introduce aborts the trace immediately.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import Kernel, MachineConfig
from repro.sanitize import SanitizerSuite
from repro.units import MIB, PAGE_SIZE

#: (fork_policy, munmap_policy) pairs under test.
BASELINE = ("eager", "page")
O1 = ("cow", "extent")

MAX_REGION_PAGES = 24


def _ops():
    """Strategy for one abstract trace operation.

    Operands are raw integers; the interpreter maps them onto live
    state (modulo indexing), so any drawn trace is valid and both
    replicas execute exactly the same concrete syscalls.
    """
    return st.one_of(
        st.tuples(
            st.just("mmap"),
            st.integers(1, MAX_REGION_PAGES),
            st.booleans(),  # MAP_POPULATE
        ),
        st.tuples(st.just("write"), st.integers(0, 63), st.integers(0, 63)),
        st.tuples(st.just("read"), st.integers(0, 63), st.integers(0, 63)),
        st.tuples(st.just("fork"), st.integers(0, 7)),
        st.tuples(st.just("munmap"), st.integers(0, 63)),
        st.tuples(
            st.just("munmap_prefix"), st.integers(0, 63), st.integers(1, 8)
        ),
        st.tuples(st.just("exit"), st.integers(0, 7)),
    )


TRACES = st.lists(_ops(), min_size=1, max_size=40)


class _Replica:
    """One policy configuration replaying a trace."""

    def __init__(self, fork_policy: str, munmap_policy: str) -> None:
        from repro.vm.vma import MapFlags

        self.kernel = Kernel(
            MachineConfig(
                dram_bytes=128 * MIB,
                nvm_bytes=128 * MIB,
                fork_policy=fork_policy,
                munmap_policy=munmap_policy,
            )
        )
        self.suite = self.kernel.arm_sanitizers(SanitizerSuite())
        self.flags = MapFlags
        self.baseline_free = self.kernel.dram_buddy.free_frames
        #: physical 4 KiB frame -> last token written there.
        self.frame_tokens = {}
        self._hook_frees()
        root = self.kernel.spawn("root")
        #: live processes, in creation order.
        self.procs = [root]
        #: per-process live regions: pid -> list of (va, pages).
        self.regions = {root.pid: []}
        #: the read-back log the differential oracle compares.
        self.observations = []
        self.next_token = 1

    def _hook_frees(self) -> None:
        # A reused frame must not leak a stale token into a later
        # read-back: drop tokens the moment the buddy takes frames back.
        buddy = self.kernel.dram_buddy
        orig_free, orig_free_many = buddy.free, buddy.free_many

        def free(pfn):
            self.frame_tokens.pop(pfn, None)
            return orig_free(pfn)

        def free_many(pfns):
            for pfn in pfns:
                self.frame_tokens.pop(pfn, None)
            return orig_free_many(pfns)

        buddy.free, buddy.free_many = free, free_many

    # -- op handlers ---------------------------------------------------
    def _pick_proc(self, i):
        return self.procs[i % len(self.procs)]

    def _pick_region(self, proc, i):
        live = self.regions[proc.pid]
        if not live:
            return None
        return i % len(live)

    def run(self, trace) -> None:
        for op in trace:
            getattr(self, "_op_" + op[0])(*op[1:])
        for proc in list(self.procs):
            self._exit(proc)

    def _op_mmap(self, pages, populate) -> None:
        proc = self._pick_proc(0)
        flags = self.flags.PRIVATE
        if populate:
            flags |= self.flags.POPULATE
        va = self.kernel.syscalls(proc).mmap(pages * PAGE_SIZE, flags=flags)
        self.regions[proc.pid].append((va, pages))

    def _op_write(self, ri, page) -> None:
        for proc in self.procs:
            index = self._pick_region(proc, ri)
            if index is None:
                continue
            va, pages = self.regions[proc.pid][index]
            pa = self.kernel.access(
                proc, va + (page % pages) * PAGE_SIZE, write=True
            )
            self.frame_tokens[pa // PAGE_SIZE] = self.next_token
            self.next_token += 1
            return

    def _op_read(self, ri, page) -> None:
        for proc in self.procs:
            index = self._pick_region(proc, ri)
            if index is None:
                continue
            va, pages = self.regions[proc.pid][index]
            pa = self.kernel.access(proc, va + (page % pages) * PAGE_SIZE)
            self.observations.append(
                (proc.pid, self.frame_tokens.get(pa // PAGE_SIZE, "zero"))
            )
            return

    def _op_fork(self, pi) -> None:
        if len(self.procs) >= 6:
            return
        parent = self._pick_proc(pi)
        child = self.kernel.syscalls(parent).fork()
        self.procs.append(child)
        self.regions[child.pid] = list(self.regions[parent.pid])

    def _op_munmap(self, ri) -> None:
        for proc in self.procs:
            index = self._pick_region(proc, ri)
            if index is None:
                continue
            va, pages = self.regions[proc.pid].pop(index)
            self.kernel.syscalls(proc).munmap(va, pages * PAGE_SIZE)
            return

    def _op_munmap_prefix(self, ri, cut) -> None:
        for proc in self.procs:
            index = self._pick_region(proc, ri)
            if index is None:
                continue
            va, pages = self.regions[proc.pid][index]
            cut = min(cut, pages)
            self.kernel.syscalls(proc).munmap(va, cut * PAGE_SIZE)
            if cut == pages:
                self.regions[proc.pid].pop(index)
            else:
                self.regions[proc.pid][index] = (
                    va + cut * PAGE_SIZE,
                    pages - cut,
                )
            return

    def _op_exit(self, pi) -> None:
        if len(self.procs) <= 1:
            return  # keep one process alive mid-trace
        self._exit(self._pick_proc(pi))

    def _exit(self, proc) -> None:
        proc.exit()
        self.procs.remove(proc)
        del self.regions[proc.pid]

    # -- oracles -------------------------------------------------------
    @property
    def leaked_frames(self) -> int:
        return self.baseline_free - self.kernel.dram_buddy.free_frames

    @property
    def frame_census(self):
        return self.suite.report()["shadow"]["frame"]


@given(trace=TRACES)
@settings(max_examples=40, deadline=None)
def test_policies_are_observably_identical(trace):
    replicas = [_Replica(*BASELINE), _Replica(*O1)]
    for replica in replicas:
        replica.run(trace)
    baseline, o1 = replicas
    # Oracle 1: identical observable memory, read by read.
    assert baseline.observations == o1.observations
    # Oracle 2: identical (and empty) leak census after teardown.
    assert baseline.leaked_frames == 0
    assert o1.leaked_frames == 0
    assert baseline.frame_census == o1.frame_census
    assert baseline.frame_census["dram_blocks_outstanding"] == 0
    # No sanitizer fired on either machine (halt mode would have raised,
    # but make the expectation explicit).
    assert baseline.suite.violations == []
    assert o1.suite.violations == []


def test_fork_heavy_regression_trace():
    """A fixed fork/write/unmap-heavy trace, always run (no shrinking)."""
    trace = [
        ("mmap", 20, True),
        ("write", 0, 3),
        ("fork", 0),
        ("write", 0, 3),  # COW break in one of the sharers
        ("read", 0, 3),
        ("fork", 1),
        ("write", 0, 7),
        ("read", 0, 7),
        ("munmap_prefix", 0, 4),
        ("mmap", 8, False),
        ("write", 1, 2),
        ("read", 1, 2),
        ("exit", 1),
        ("read", 0, 5),
        ("munmap", 0),
        ("exit", 0),
    ]
    replicas = [_Replica(*BASELINE), _Replica(*O1)]
    for replica in replicas:
        replica.run(trace)
    baseline, o1 = replicas
    assert baseline.observations == o1.observations
    assert baseline.leaked_frames == 0 and o1.leaked_frames == 0
    assert baseline.frame_census == o1.frame_census
