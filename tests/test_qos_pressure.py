"""Existing allocation paths replayed under memcg pressure.

Satellite coverage for the QoS controller: the allocation-trace
generator (``repro.workloads.alloc_traces``) and the region heap
(``repro.runtime.objheap``) run inside watermarked cgroups, proving the
accounting follows real malloc/free churn exactly and that backpressure
engages without breaking either workload.
"""

from __future__ import annotations

import math

import pytest

from repro.core.fom import FileOnlyMemory
from repro.kernel import Kernel, MachineConfig
from repro.runtime.objheap import ObjectHeap
from repro.units import GIB, MIB, PAGE_SIZE
from repro.workloads.alloc_traces import AllocTrace, TraceOp


@pytest.fixture
def fom_kernel() -> Kernel:
    return Kernel(
        MachineConfig(
            dram_bytes=64 * MIB,
            nvm_bytes=2 * GIB,
            pmfs_extent_align_frames=512,
        )
    )


def _order_for(size: int) -> int:
    pages = max(1, -(-size // PAGE_SIZE))
    return max(0, math.ceil(math.log2(pages)))


class TestAllocTraceUnderPressure:
    def test_trace_replay_charges_and_drains_exactly(self, kernel):
        qos = kernel.arm_qos()
        cg = qos.cgroup("trace", high=256)
        process = kernel.spawn("replayer", cgroup=cg)
        qos.enter_pid(process.pid)

        root_before = qos.root.usage_frames
        trace = AllocTrace(seed=11, large_bytes_max=256 * 1024)
        events = trace.generate(operations=400, live_target=64)
        live = {}
        for event in events:
            if event.op is TraceOp.MALLOC:
                order = _order_for(event.size)
                live[event.tag] = (kernel.dram_buddy.alloc(order), order)
            else:
                pfn, order = live.pop(event.tag)
                kernel.dram_buddy.free(pfn)

        expected = sum(1 << order for _, order in live.values())
        assert cg.usage_frames == expected
        assert cg.peak_frames >= expected
        for pfn, _order in live.values():
            kernel.dram_buddy.free(pfn)
        assert cg.usage_frames == 0
        assert qos.root.usage_frames == root_before

    def test_unreclaimable_trace_heap_gets_throttled_not_killed(self, kernel):
        qos = kernel.arm_qos()
        # A tight soft limit with no hard limit: raw buddy allocations
        # are not on any LRU, so every breach falls through reclaim to
        # the throttle — backpressure, never failure.
        cg = qos.cgroup("trace", high=32)
        process = kernel.spawn("replayer", cgroup=cg)
        qos.enter_pid(process.pid)

        events = AllocTrace(seed=3, large_bytes_max=64 * 1024).generate(
            operations=300, live_target=48
        )
        live = {}
        before = kernel.clock.now
        for event in events:
            if event.op is TraceOp.MALLOC:
                order = _order_for(event.size)
                live[event.tag] = (kernel.dram_buddy.alloc(order), order)
            else:
                pfn, order = live.pop(event.tag)
                kernel.dram_buddy.free(pfn)
        assert kernel.counters.get("qos_throttle_stall") > 0
        assert kernel.counters.get("qos_oom_kill") == 0
        assert kernel.clock.now > before  # stalls charged to the clock
        assert cg.psi.full_total_ns > 0
        for pfn, _order in live.values():
            kernel.dram_buddy.free(pfn)
        assert cg.usage_frames == 0


class TestObjectHeapUnderPressure:
    def test_region_heap_charges_the_nvm_ledger(self, fom_kernel):
        kernel = fom_kernel
        qos = kernel.arm_qos()
        cg = qos.cgroup("runtime")
        process = kernel.spawn("rt", cgroup=cg)
        qos.enter_pid(process.pid)
        heap = ObjectHeap(FileOnlyMemory(kernel), process)

        for _ in range(2000):
            heap.new(4096)
        assert heap.live_regions >= 2
        # Each region is one FOM file; its extent blocks land on the
        # tenant's NVM side ledger.
        assert cg.nvm_blocks >= heap.live_regions * 512

        heap.destroy()
        assert cg.nvm_blocks == 0

    def test_region_free_uncharges_as_a_unit(self, fom_kernel):
        kernel = fom_kernel
        qos = kernel.arm_qos()
        cg = qos.cgroup("runtime")
        process = kernel.spawn("rt", cgroup=cg)
        qos.enter_pid(process.pid)
        heap = ObjectHeap(FileOnlyMemory(kernel), process)

        region = heap.create_region()
        for _ in range(100):
            heap.new(256, region=region)
        charged = cg.nvm_blocks
        assert charged > 0
        died = heap.free_region(region)
        assert died == 100
        # One unlink drops the whole region's charge — O(1) reclaim in
        # objects, exactly the paper's file-granularity bargain.
        assert cg.nvm_blocks == 0

    def test_heap_churn_under_watermark_stays_alive(self, fom_kernel):
        kernel = fom_kernel
        qos = kernel.arm_qos()
        # Watermark the DRAM side: page-table nodes and page-cache
        # frames allocated while the heap faults its regions in are
        # charged to the tenant and may breach.
        cg = qos.cgroup("runtime", high=24)
        process = kernel.spawn("rt", cgroup=cg)
        qos.enter_pid(process.pid)
        heap = ObjectHeap(FileOnlyMemory(kernel), process)

        refs = []
        for round_ in range(4):
            region = heap.create_region()
            for _ in range(200):
                refs.append(heap.new(1024, region=region))
            heap.free_region(region)
        assert heap.live_regions == 0
        assert process.alive
        assert cg.nvm_blocks == 0
        assert kernel.counters.get("qos_oom_kill") == 0
