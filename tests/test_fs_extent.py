"""Extent trees: insert, merge, lookup, runs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FileSystemError
from repro.fs.extent import Extent, ExtentTree


class TestExtent:
    def test_geometry(self):
        extent = Extent(logical=4, pfn=100, count=8)
        assert extent.logical_end == 12
        assert extent.covers(4) and extent.covers(11)
        assert not extent.covers(12)

    def test_pfn_of(self):
        extent = Extent(logical=4, pfn=100, count=8)
        assert extent.pfn_of(6) == 102

    def test_abuts(self):
        a = Extent(0, 100, 4)
        assert a.abuts(Extent(4, 104, 2))
        assert not a.abuts(Extent(4, 200, 2))  # physically discontiguous
        assert not a.abuts(Extent(5, 104, 2))  # logical gap

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Extent(0, 0, 0)
        with pytest.raises(ValueError):
            Extent(-1, 0, 1)


class TestExtentTree:
    def test_insert_lookup(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 50, 4))
        tree.insert(Extent(8, 100, 4))
        assert tree.lookup(1) == (51, 3)
        assert tree.lookup(8) == (100, 4)
        assert tree.lookup(4) is None  # hole
        assert tree.lookup(100) is None

    def test_run_remaining_counts_to_extent_end(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 10, 8))
        pfn, remaining = tree.lookup(5)
        assert pfn == 15 and remaining == 3

    def test_contiguous_inserts_merge(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 4))
        tree.insert(Extent(4, 104, 4))
        assert tree.extent_count == 1
        assert tree.lookup(7) == (107, 1)

    def test_forward_merge(self):
        tree = ExtentTree()
        tree.insert(Extent(4, 104, 4))
        tree.insert(Extent(0, 100, 4))
        assert tree.extent_count == 1

    def test_bridge_merge_collapses_three(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 2))
        tree.insert(Extent(4, 104, 2))
        tree.insert(Extent(2, 102, 2))
        assert tree.extent_count == 1
        assert tree.block_count == 6

    def test_overlap_rejected(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 4))
        with pytest.raises(FileSystemError):
            tree.insert(Extent(2, 200, 4))
        with pytest.raises(FileSystemError):
            tree.insert(Extent(3, 50, 1))

    def test_runs_cover_request(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 4))
        tree.insert(Extent(4, 300, 4))
        runs = list(tree.runs(2, 4))
        assert runs == [(2, 102, 2), (4, 300, 2)]

    def test_runs_raise_on_hole(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 2))
        with pytest.raises(FileSystemError, match="hole"):
            list(tree.runs(0, 4))

    def test_remove_all(self):
        tree = ExtentTree()
        tree.insert(Extent(0, 100, 4))
        extents = tree.remove_all()
        assert len(extents) == 1
        assert tree.extent_count == 0 and tree.block_count == 0

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=40, unique=True))
    @settings(max_examples=40)
    def test_single_blocks_lookup_roundtrip(self, blocks):
        """Arbitrary single-block inserts: every inserted block resolves to
        its own frame; uninserted blocks resolve to None."""
        tree = ExtentTree()
        for block in blocks:
            tree.insert(Extent(logical=block, pfn=1000 + 2 * block, count=1))
        for block in range(64):
            found = tree.lookup(block)
            if block in blocks:
                assert found is not None and found[0] == 1000 + 2 * block
            else:
                assert found is None
