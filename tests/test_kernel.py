"""Kernel facade: assembly, processes, syscalls, crash."""

import pytest

from repro.errors import (
    BadFileDescriptorError,
    ConfigurationError,
    MappingError,
    ProcessError,
)
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags, Protection


class TestAssembly:
    def test_standard_machine(self):
        kernel = Kernel.standard(dram_bytes=256 * MIB, nvm_bytes=1 * GIB)
        assert kernel.pmfs is not None
        assert kernel.rtlb is None

    def test_no_nvm_machine(self):
        kernel = Kernel(MachineConfig(dram_bytes=256 * MIB, nvm_bytes=0))
        assert kernel.pmfs is None

    def test_range_hardware(self):
        kernel = Kernel(
            MachineConfig(dram_bytes=128 * MIB, nvm_bytes=0, range_hardware=True)
        )
        assert kernel.rtlb is not None

    def test_too_little_dram_rejected(self):
        with pytest.raises(ConfigurationError):
            Kernel(MachineConfig(dram_bytes=1 * MIB))

    def test_zeropool_prefilled(self):
        kernel = Kernel(
            MachineConfig(dram_bytes=128 * MIB, nvm_bytes=0, zeropool_frames=64)
        )
        assert kernel.zeropool.available == 64

    def test_physical_layout(self, kernel):
        assert kernel.nvm_region.start == kernel.dram_region.end


class TestProcesses:
    def test_spawn_unique_ids(self, kernel):
        a, b = kernel.spawn("a"), kernel.spawn("b")
        assert a.pid != b.pid
        assert a.space.asid != b.space.asid

    def test_fd_lifecycle(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        fd = sys.open(kernel.tmpfs, "/f", create=True, size=4 * KIB)
        assert process.open_fd_count == 1
        sys.close(fd)
        assert process.open_fd_count == 0
        with pytest.raises(BadFileDescriptorError):
            sys.read(fd, 1)

    def test_exit_tears_down_everything(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        sys.open(kernel.tmpfs, "/f", create=True, size=4 * KIB)
        va = sys.mmap(64 * KIB, flags=MapFlags.PRIVATE | MapFlags.POPULATE)
        process.exit()
        assert not process.alive
        assert process.space.vmas == []
        assert process.open_fd_count == 0

    def test_double_exit_rejected(self, kernel):
        process = kernel.spawn("p")
        process.exit()
        with pytest.raises(ProcessError):
            process.exit()

    def test_context_switch_charged_between_processes(self, kernel):
        a, b = kernel.spawn("a"), kernel.spawn("b")
        sa, sb = kernel.syscalls(a), kernel.syscalls(b)
        va_a = sa.mmap(PAGE_SIZE)
        va_b = sb.mmap(PAGE_SIZE)
        kernel.access(a, va_a)
        before = kernel.counters.get("cr3_switch")
        kernel.access(b, va_b)
        assert kernel.counters.get("cr3_switch") == before + 1
        kernel.access(b, va_b)  # same process: no switch
        assert kernel.counters.get("cr3_switch") == before + 1


class TestSyscallCosts:
    def test_every_syscall_pays_the_boundary(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        boundary = kernel.costs.syscall_entry_ns + kernel.costs.syscall_exit_ns
        with kernel.measure() as m:
            fd = sys.open(kernel.tmpfs, "/f", create=True)
        assert m.elapsed_ns >= boundary
        with kernel.measure() as m:
            sys.close(fd)
        assert m.elapsed_ns >= boundary

    def test_read_write_data_roundtrip(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        fd = sys.open(kernel.pmfs, "/rw", create=True)
        assert sys.write(fd, b"persist me") == 10
        assert sys.pread(fd, 0, 10) == b"persist me"

    def test_mmap_unaligned_offset_rejected(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        fd = sys.open(kernel.tmpfs, "/f", create=True, size=8 * KIB)
        with pytest.raises(MappingError):
            sys.mmap(4 * KIB, fd=fd, offset=100)

    def test_mmap_offset_maps_later_pages(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        fd = sys.open(kernel.tmpfs, "/f", create=True, size=8 * KIB)
        va = sys.mmap(4 * KIB, fd=fd, offset=4 * KIB, flags=MapFlags.SHARED)
        paddr = kernel.access(process, va)
        inode = process.fd(fd).inode
        assert paddr // PAGE_SIZE == kernel.tmpfs._pages[inode.ino][1]

    def test_dax_mmap_costs_more_than_tmpfs(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        fd_t = sys.open(kernel.tmpfs, "/t", create=True, size=64 * KIB)
        fd_p = sys.open(kernel.pmfs, "/p", create=True, size=64 * KIB)
        with kernel.measure() as tmpfs_map:
            sys.mmap(64 * KIB, fd=fd_t)
        with kernel.measure() as dax_map:
            sys.mmap(64 * KIB, fd=fd_p)
        assert (
            dax_map.elapsed_ns - tmpfs_map.elapsed_ns == kernel.costs.dax_setup_ns
        )

    def test_unlink_syscall(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        sys.open(kernel.tmpfs, "/gone", create=True)
        sys.unlink(kernel.tmpfs, "/gone")
        assert not kernel.tmpfs.exists("/gone")


class TestCrash:
    def test_crash_kills_processes_and_tmpfs(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        sys.open(kernel.tmpfs, "/v", create=True, size=4 * KIB)
        kernel.pmfs.create("/p", size=4 * KIB)
        kernel.crash()
        assert not process.alive
        assert kernel.processes == {}
        assert not kernel.tmpfs.exists("/v")
        assert kernel.pmfs.exists("/p")

    def test_crash_flushes_hardware_state(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        va = sys.mmap(PAGE_SIZE)
        kernel.access(process, va)
        kernel.crash()
        assert kernel.tlb.resident_count() == 0

    def test_measure_helper(self, kernel):
        with kernel.measure() as m:
            kernel.clock.advance(42)
            kernel.counters.bump("custom")
        assert m.elapsed_ns == 42
        assert m.counter_delta == {"custom": 1}

    def test_warm_file_makes_reads_llc_hits(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        from repro.vm.vma import MapFlags

        fd = sys.open(kernel.tmpfs, "/warm", create=True, size=4096)
        inode = process.fd(fd).inode
        kernel.warm_file(inode)
        va = sys.mmap(4096, fd=fd, flags=MapFlags.SHARED | MapFlags.POPULATE)
        before = kernel.counters.get("cache_llc_hit")
        kernel.access(process, va)
        assert kernel.counters.get("cache_llc_hit") > before

    def test_warm_empty_file_noop(self, kernel):
        inode = kernel.tmpfs.create("/empty")
        kernel.warm_file(inode)  # must not raise
