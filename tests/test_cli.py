"""CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--mib", "2"]) == 0
        out = capsys.readouterr().out
        assert "demand paging" in out
        assert "file-only memory" in out
        assert "0 faults" in out

    def test_meminfo_runs(self, capsys):
        assert main(["meminfo", "--dram-gib", "1", "--nvm-gib", "2"]) == 0
        out = capsys.readouterr().out
        assert "dram_total_bytes" in out
        assert "1.0 GiB" in out

    def test_figures_runs(self, capsys):
        assert main(["figures"]) == 0
        assert "pytest benchmarks/" in capsys.readouterr().out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_prog_name(self):
        assert build_parser().prog == "repro-o1"
