"""CLI entry point."""

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--mib", "2"]) == 0
        out = capsys.readouterr().out
        assert "demand paging" in out
        assert "file-only memory" in out
        assert "0 faults" in out

    def test_demo_trace_writes_chrome_json(self, capsys, tmp_path):
        path = tmp_path / "demo.json"
        assert main(["demo", "--mib", "2", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace events to {path}" in out
        document = json.loads(path.read_text())
        phases = {record["ph"] for record in document["traceEvents"]}
        assert {"B", "E", "M"} <= phases

    def test_trace_prints_attribution(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["trace", "--mib", "2", "-o", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cost attribution, demand-paging phase:" in out
        assert "cost attribution, file-only-memory phase:" in out
        assert "fault" in out
        assert "total" in out
        assert path.exists()

    def test_stats_prints_histograms_and_counters(self, capsys):
        assert main(["stats", "--mib", "2"]) == 0
        out = capsys.readouterr().out
        assert "latency histograms" in out
        assert "p50" in out and "p99" in out
        assert "fault_minor" in out

    def test_meminfo_runs(self, capsys):
        assert main(["meminfo", "--dram-gib", "1", "--nvm-gib", "2"]) == 0
        out = capsys.readouterr().out
        assert "dram_total_bytes" in out
        assert "1.0 GiB" in out

    def test_figures_runs(self, capsys):
        assert main(["figures"]) == 0
        assert "pytest benchmarks/" in capsys.readouterr().out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_prog_name(self):
        assert build_parser().prog == "repro-o1"

    def test_sanitize_demo_clean(self, capsys, tmp_path):
        report_path = tmp_path / "sanitize_report.json"
        assert main(["sanitize", "--mib", "4", "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "no shadow-state violations" in out
        report = json.loads(report_path.read_text())
        assert report["tool"] == "repro-o1 sanitize"
        assert report["mode"] == "demo"
        assert report["violation_count"] == 0
        assert report["armed_detectors"] == ["trans", "frame", "persist"]
        assert report["checks"]

    def test_sanitize_detector_subset(self, capsys):
        assert main(["sanitize", "--mib", "4", "--detectors", "frame"]) == 0
        assert "detectors frame" in capsys.readouterr().out
