"""Range translations: table semantics and the O(1) map/unmap path."""

import pytest

from repro.core.rangetrans import RangeMemory, RangeTable
from repro.errors import ConfigurationError, MappingError, ProtectionError
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.vm.vma import Protection


@pytest.fixture
def env(range_kernel):
    return range_kernel, RangeMemory(range_kernel)


class TestRangeTable:
    def make_table(self, kernel):
        return RangeTable(1, kernel.clock, kernel.costs, kernel.counters)

    def test_insert_lookup(self, range_kernel):
        table = self.make_table(range_kernel)
        table.insert(base=0x10000, limit=MIB, paddr=0x900000, writable=True)
        entry = table.lookup(0x10000 + 1234)
        assert entry is not None
        assert entry.translate(0x10000) == 0x900000

    def test_lookup_miss(self, range_kernel):
        table = self.make_table(range_kernel)
        assert table.lookup(0x5000) is None

    def test_overlap_rejected(self, range_kernel):
        table = self.make_table(range_kernel)
        table.insert(base=0, limit=MIB, paddr=0, writable=True)
        with pytest.raises(MappingError):
            table.insert(base=MIB // 2, limit=MIB, paddr=0, writable=True)
        with pytest.raises(MappingError):
            table.insert(base=0, limit=4 * KIB, paddr=0, writable=True)

    def test_remove(self, range_kernel):
        table = self.make_table(range_kernel)
        table.insert(base=0, limit=MIB, paddr=0, writable=True)
        table.remove(0)
        assert table.entry_count == 0
        with pytest.raises(MappingError):
            table.remove(0)

    def test_insert_cost_independent_of_limit(self, range_kernel):
        table = self.make_table(range_kernel)
        with range_kernel.measure() as small:
            table.insert(base=0, limit=4 * KIB, paddr=0, writable=True)
        with range_kernel.measure() as big:
            table.insert(base=GIB, limit=GIB, paddr=GIB, writable=True)
        assert small.elapsed_ns == big.elapsed_ns


class TestRangeMemoryFiles:
    def test_needs_range_hardware(self, kernel):
        with pytest.raises(ConfigurationError):
            RangeMemory(kernel)

    def test_single_extent_file_one_rte(self, env):
        kernel, rm = env
        inode = kernel.pmfs.create("/f", size=64 * MIB)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode)
        assert mapping.entry_count == 1

    def test_mapped_file_accessible_without_page_tables(self, env):
        kernel, rm = env
        inode = kernel.pmfs.create("/f", size=4 * MIB)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode)
        kernel.access_range(process, mapping.vaddr, 4 * MIB)
        assert kernel.counters.get("walk_start") == 0
        assert kernel.counters.get("fault_trap") == 0
        assert process.space.page_table.leaf_count() == 0

    def test_translation_correct(self, env):
        kernel, rm = env
        inode = kernel.pmfs.create("/f", size=1 * MIB)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode)
        paddr = kernel.access(process, mapping.vaddr + 7 * PAGE_SIZE + 3)
        pfn = kernel.pmfs.backing_for(inode).frame_for(7, False)
        assert paddr == pfn * PAGE_SIZE + 3

    def test_map_cost_independent_of_file_size(self, env):
        kernel, rm = env
        small_inode = kernel.pmfs.create("/small", size=1 * MIB)
        big_inode = kernel.pmfs.create("/big", size=256 * MIB)
        p = kernel.spawn("p")
        with kernel.measure() as small:
            rm.map_file(p, small_inode)
        with kernel.measure() as big:
            rm.map_file(p, big_inode)
        # Both files are single-extent; cost must match to the nanosecond.
        assert small.elapsed_ns == big.elapsed_ns

    def test_readonly_range_blocks_writes(self, env):
        kernel, rm = env
        inode = kernel.pmfs.create("/ro", size=1 * MIB)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode, prot=Protection.READ)
        kernel.access(process, mapping.vaddr)
        with pytest.raises(ProtectionError):
            kernel.access(process, mapping.vaddr, write=True)

    def test_empty_file_rejected(self, env):
        kernel, rm = env
        inode = kernel.pmfs.create("/empty")
        with pytest.raises(MappingError):
            rm.map_file(kernel.spawn("p"), inode)


class TestUnmap:
    def test_unmap_single_operation(self, env):
        kernel, rm = env
        inode = kernel.pmfs.create("/f", size=128 * MIB)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode)
        kernel.access(process, mapping.vaddr)  # populate the rTLB
        with kernel.measure() as m:
            rm.unmap(mapping)
        assert m.counter_delta.get("rte_remove") == 1
        assert kernel.rtlb.resident_count() == 0
        assert process.space.vmas == []

    def test_access_after_unmap_segfaults(self, env):
        kernel, rm = env
        inode = kernel.pmfs.create("/f", size=1 * MIB)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode)
        kernel.access(process, mapping.vaddr)
        rm.unmap(mapping)
        with pytest.raises(ProtectionError):
            kernel.access(process, mapping.vaddr)

    def test_unmap_spares_other_mappings(self, env):
        kernel, rm = env
        a = kernel.pmfs.create("/a", size=1 * MIB)
        b = kernel.pmfs.create("/b", size=1 * MIB)
        process = kernel.spawn("p")
        map_a = rm.map_file(process, a)
        map_b = rm.map_file(process, b)
        rm.unmap(map_a)
        kernel.access(process, map_b.vaddr)  # still fine


class TestRawExtents:
    def test_map_extent(self, env):
        kernel, rm = env
        extent = kernel.nvm_allocator.alloc_extent(256)
        process = kernel.spawn("p")
        mapping = rm.map_extent(process, extent.pfn * PAGE_SIZE, 256 * PAGE_SIZE)
        paddr = kernel.access(process, mapping.vaddr + PAGE_SIZE)
        assert paddr == (extent.pfn + 1) * PAGE_SIZE

    def test_bad_length_rejected(self, env):
        kernel, rm = env
        with pytest.raises(MappingError):
            rm.map_extent(kernel.spawn("p"), 0, 100)

    def test_table_provider_wired_once(self, env):
        kernel, rm = env
        process = kernel.spawn("p")
        table1 = rm.table_for(process.space)
        table2 = rm.table_for(process.space)
        assert table1 is table2
        assert process.space.range_provider is not None
