"""Property-based integration: random workloads vs simple models.

Heavy hypothesis tests driving the whole stack (syscalls, faults, file
systems) with random operation sequences, checking global invariants a
correct kernel must keep:

* frame conservation: free + used frames is constant;
* translation coherence: every resident PTE points at the frame its
  backing says it should;
* file-system/bytes equivalence for data read back;
* and, with a random `FaultPlan` crash interleaved anywhere into the
  sequence, every recovery oracle after the machine comes back up.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos import FaultPlan, recover_machine, run_oracles
from repro.errors import (
    FileExistsError_,
    FileNotFoundError_,
    NoSpaceError,
    OutOfMemoryError,
    SimulatedCrashError,
)
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags, Protection


def small_kernel():
    return Kernel(MachineConfig(dram_bytes=128 * MIB, nvm_bytes=256 * MIB))


class TestAddressSpaceProperties:
    @given(st.data())
    @settings(max_examples=25)
    def test_mmap_touch_munmap_conserves_frames(self, data):
        """Any mmap/touch/munmap interleaving returns every data frame."""
        kernel = small_kernel()
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        baseline_free = kernel.dram_buddy.free_frames
        live = []  # (va, pages)
        node_frames = 0
        for _ in range(data.draw(st.integers(1, 25))):
            action = data.draw(st.sampled_from(["map", "touch", "unmap"]))
            if action == "map" or not live:
                pages = data.draw(st.integers(1, 16))
                flags = MapFlags.PRIVATE
                if data.draw(st.booleans()):
                    flags |= MapFlags.POPULATE
                before_nodes = kernel.counters.get("pt_node_alloc")
                va = sys.mmap(pages * PAGE_SIZE, flags=flags)
                node_frames += (
                    kernel.counters.get("pt_node_alloc") - before_nodes
                )
                live.append((va, pages))
            elif action == "touch":
                va, pages = data.draw(st.sampled_from(live))
                page = data.draw(st.integers(0, pages - 1))
                before_nodes = kernel.counters.get("pt_node_alloc")
                kernel.access(process, va + page * PAGE_SIZE, write=True)
                node_frames += (
                    kernel.counters.get("pt_node_alloc") - before_nodes
                )
            else:
                index = data.draw(st.integers(0, len(live) - 1))
                va, pages = live.pop(index)
                sys.munmap(va, pages * PAGE_SIZE)
        for va, pages in live:
            sys.munmap(va, pages * PAGE_SIZE)
        # All data frames returned; page-table node frames may stay out
        # (still linked in the live tree) or come back early (extent
        # unmaps free exclusively-owned window subtrees), never leak
        # beyond the node count nor over-free past the baseline.
        assert (
            baseline_free - node_frames
            <= kernel.dram_buddy.free_frames
            <= baseline_free
        )

    @given(st.data())
    @settings(max_examples=20)
    def test_translation_coherence(self, data):
        """Every resident translation agrees with the file backing."""
        kernel = small_kernel()
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        size = data.draw(st.integers(1, 32)) * PAGE_SIZE
        fd = sys.open(kernel.tmpfs, "/f", create=True, size=size)
        va = sys.mmap(size, fd=fd, flags=MapFlags.SHARED)
        inode = process.fd(fd).inode
        touched = data.draw(
            st.lists(
                st.integers(0, size // PAGE_SIZE - 1),
                min_size=1, max_size=20,
            )
        )
        for page in touched:
            kernel.access(process, va + page * PAGE_SIZE, write=True)
        cache = kernel.tmpfs._pages[inode.ino]
        for page in set(touched):
            pte = process.space.page_table.lookup(va + page * PAGE_SIZE)
            assert pte is not None
            assert pte.pfn == cache[page]


class TestFileSystemProperties:
    @given(st.data())
    @settings(max_examples=20)
    def test_pmfs_matches_dict_model(self, data):
        """Random create/write/read/unlink matches a bytes model.

        Each file is modelled as one bytearray sized to the furthest
        write, so overlap semantics are exact (a dict of writes cannot
        express "a later write at a lower offset spans this range").
        """
        kernel = small_kernel()
        fs = kernel.pmfs
        model = {}
        for step in range(data.draw(st.integers(1, 30))):
            action = data.draw(
                st.sampled_from(["create", "write", "read", "unlink"])
            )
            if action == "create":
                name = f"/f{data.draw(st.integers(0, 9))}"
                if name not in model:
                    fs.create(name)
                    model[name] = bytearray()
            elif action == "write" and model:
                name = data.draw(st.sampled_from(sorted(model)))
                offset = data.draw(st.integers(0, 3 * PAGE_SIZE))
                payload = data.draw(st.binary(min_size=1, max_size=200))
                with fs.open(name) as handle:
                    handle.pwrite(offset, payload)
                buf = model[name]
                end = offset + len(payload)
                if len(buf) < end:
                    buf.extend(b"\x00" * (end - len(buf)))
                buf[offset:end] = payload
            elif action == "read" and model:
                name = data.draw(st.sampled_from(sorted(model)))
                buf = model[name]
                offset = data.draw(st.integers(0, 3 * PAGE_SIZE + 200))
                length = data.draw(st.integers(1, 300))
                # pread is short at EOF and zero-fills holes — exactly a
                # slice of the model bytearray.
                expected = bytes(buf[offset : offset + length])
                with fs.open(name) as handle:
                    assert handle.pread(offset, length) == expected
            elif action == "unlink" and model:
                name = data.draw(st.sampled_from(sorted(model)))
                fs.unlink(name)
                del model[name]
        assert fs.file_count() == len(model)

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=20))
    @settings(max_examples=20)
    def test_pmfs_space_conservation(self, sizes_pages):
        """Creating and unlinking any set of files returns every block."""
        kernel = small_kernel()
        free_before = kernel.nvm_allocator.free_blocks
        for index, pages in enumerate(sizes_pages):
            kernel.pmfs.create(f"/s{index}", size=pages * PAGE_SIZE)
        for index in range(len(sizes_pages)):
            kernel.pmfs.unlink(f"/s{index}")
        assert kernel.nvm_allocator.free_blocks == free_before


class TestChaosProperties:
    """Random syscall sequences with a random crash interleaved anywhere.

    The global invariant: whatever the workload was doing when the armed
    :class:`FaultPlan` fired, recovery brings the machine back to a state
    where every oracle (fsck, frame/block conservation, translation
    coherence, recovery idempotence) holds.
    """

    #: Anything an injected fault may surface through an unhardened call
    #: site, besides the power failure itself.
    _FAULT_ERRORS = (SimulatedCrashError, OutOfMemoryError, NoSpaceError)

    def _random_ops(self, data, kernel, fom, strategy):
        from repro.core.fom import MapStrategy

        process = kernel.spawn("w")
        sys = kernel.syscalls(process)
        live_maps = []  # (va, size)
        regions = []
        for _ in range(data.draw(st.integers(2, 12))):
            action = data.draw(
                st.sampled_from(
                    ["create", "mmap", "touch", "pwrite", "munmap",
                     "region", "release", "unlink"]
                )
            )
            if action == "create":
                index = data.draw(st.integers(0, 5))
                pages = data.draw(st.integers(1, 8))
                try:
                    kernel.pmfs.create(f"/c{index}", size=pages * PAGE_SIZE)
                except FileExistsError_:
                    pass
            elif action == "mmap":
                pages = data.draw(st.integers(1, 8))
                flags = MapFlags.PRIVATE
                if data.draw(st.booleans()):
                    flags |= MapFlags.POPULATE
                va = sys.mmap(pages * PAGE_SIZE, flags=flags)
                live_maps.append((va, pages * PAGE_SIZE))
            elif action == "touch" and live_maps:
                va, size = data.draw(st.sampled_from(live_maps))
                page = data.draw(st.integers(0, size // PAGE_SIZE - 1))
                kernel.access(process, va + page * PAGE_SIZE, write=True)
            elif action == "pwrite":
                index = data.draw(st.integers(0, 5))
                fd = sys.open(
                    kernel.pmfs, f"/c{index}", create=True,
                    size=2 * PAGE_SIZE,
                )
                sys.pwrite(
                    fd,
                    data.draw(st.integers(0, PAGE_SIZE)),
                    data.draw(st.binary(min_size=1, max_size=128)),
                )
                sys.close(fd)
            elif action == "munmap" and live_maps:
                va, size = live_maps.pop(
                    data.draw(st.integers(0, len(live_maps) - 1))
                )
                sys.munmap(va, size)
            elif action == "region":
                pages = data.draw(st.integers(1, 8))
                regions.append(
                    fom.allocate(
                        process,
                        pages * PAGE_SIZE,
                        strategy=strategy,
                        name=f"/r{len(regions)}",
                    )
                )
            elif action == "release" and regions:
                region = regions.pop(
                    data.draw(st.integers(0, len(regions) - 1))
                )
                if not region.released:
                    fom.release(region)
            elif action == "unlink":
                index = data.draw(st.integers(0, 5))
                try:
                    sys.unlink(kernel.pmfs, f"/c{index}")
                except FileNotFoundError_:
                    pass

    def _crash_anywhere(self, data, kernel, fom, strategy):
        seed = data.draw(st.integers(0, 2**16))
        plan = FaultPlan.seeded(seed, rate=0.2, max_faults=1)
        kernel.arm_chaos(plan)
        try:
            self._random_ops(data, kernel, fom, strategy)
        except self._FAULT_ERRORS:
            pass
        finally:
            kernel.disarm_chaos()
        recover_machine(kernel)
        assert run_oracles(kernel) == [], (
            f"oracles failed after {plan.describe()} "
            f"(injections: {plan.injections})"
        )

    @given(st.data())
    @settings(max_examples=10)
    def test_pbm_address_space_recovers_from_any_crash(self, data):
        from repro.core.fom import FileOnlyMemory, MapStrategy

        kernel = Kernel(
            MachineConfig(
                dram_bytes=128 * MIB, nvm_bytes=256 * MIB,
                cpus=2, pmfs_extent_align_frames=8,
            )
        )
        fom = FileOnlyMemory(kernel)
        self._crash_anywhere(data, kernel, fom, MapStrategy.PREMAP)

    @given(st.data())
    @settings(max_examples=10)
    def test_range_translation_space_recovers_from_any_crash(self, data):
        from repro.core.fom import FileOnlyMemory, MapStrategy

        kernel = Kernel(
            MachineConfig(
                dram_bytes=128 * MIB, nvm_bytes=256 * MIB,
                cpus=2, range_hardware=True, pmfs_extent_align_frames=8,
            )
        )
        fom = FileOnlyMemory(kernel)
        self._crash_anywhere(data, kernel, fom, MapStrategy.RANGE)
