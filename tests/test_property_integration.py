"""Property-based integration: random workloads vs simple models.

Heavy hypothesis tests driving the whole stack (syscalls, faults, file
systems) with random operation sequences, checking global invariants a
correct kernel must keep:

* frame conservation: free + used frames is constant;
* translation coherence: every resident PTE points at the frame its
  backing says it should;
* file-system/dict equivalence for data read back.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.vm.vma import MapFlags, Protection


def small_kernel():
    return Kernel(MachineConfig(dram_bytes=128 * MIB, nvm_bytes=256 * MIB))


class TestAddressSpaceProperties:
    @given(st.data())
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_mmap_touch_munmap_conserves_frames(self, data):
        """Any mmap/touch/munmap interleaving returns every data frame."""
        kernel = small_kernel()
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        baseline_free = kernel.dram_buddy.free_frames
        live = []  # (va, pages)
        node_frames = 0
        for _ in range(data.draw(st.integers(1, 25))):
            action = data.draw(st.sampled_from(["map", "touch", "unmap"]))
            if action == "map" or not live:
                pages = data.draw(st.integers(1, 16))
                flags = MapFlags.PRIVATE
                if data.draw(st.booleans()):
                    flags |= MapFlags.POPULATE
                before_nodes = kernel.counters.get("pt_node_alloc")
                va = sys.mmap(pages * PAGE_SIZE, flags=flags)
                node_frames += (
                    kernel.counters.get("pt_node_alloc") - before_nodes
                )
                live.append((va, pages))
            elif action == "touch":
                va, pages = data.draw(st.sampled_from(live))
                page = data.draw(st.integers(0, pages - 1))
                before_nodes = kernel.counters.get("pt_node_alloc")
                kernel.access(process, va + page * PAGE_SIZE, write=True)
                node_frames += (
                    kernel.counters.get("pt_node_alloc") - before_nodes
                )
            else:
                index = data.draw(st.integers(0, len(live) - 1))
                va, pages = live.pop(index)
                sys.munmap(va, pages * PAGE_SIZE)
        for va, pages in live:
            sys.munmap(va, pages * PAGE_SIZE)
        # All data frames returned; only page-table node frames remain out.
        assert (
            kernel.dram_buddy.free_frames == baseline_free - node_frames
        )

    @given(st.data())
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_translation_coherence(self, data):
        """Every resident translation agrees with the file backing."""
        kernel = small_kernel()
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        size = data.draw(st.integers(1, 32)) * PAGE_SIZE
        fd = sys.open(kernel.tmpfs, "/f", create=True, size=size)
        va = sys.mmap(size, fd=fd, flags=MapFlags.SHARED)
        inode = process.fd(fd).inode
        touched = data.draw(
            st.lists(
                st.integers(0, size // PAGE_SIZE - 1),
                min_size=1, max_size=20,
            )
        )
        for page in touched:
            kernel.access(process, va + page * PAGE_SIZE, write=True)
        cache = kernel.tmpfs._pages[inode.ino]
        for page in set(touched):
            pte = process.space.page_table.lookup(va + page * PAGE_SIZE)
            assert pte is not None
            assert pte.pfn == cache[page]


class TestFileSystemProperties:
    @given(st.data())
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_pmfs_matches_dict_model(self, data):
        """Random create/write/read/unlink matches a dict model."""
        kernel = small_kernel()
        fs = kernel.pmfs
        model = {}
        for step in range(data.draw(st.integers(1, 30))):
            action = data.draw(
                st.sampled_from(["create", "write", "read", "unlink"])
            )
            if action == "create":
                name = f"/f{data.draw(st.integers(0, 9))}"
                if name not in model:
                    fs.create(name)
                    model[name] = {}
            elif action == "write" and model:
                name = data.draw(st.sampled_from(sorted(model)))
                offset = data.draw(st.integers(0, 3 * PAGE_SIZE))
                payload = data.draw(st.binary(min_size=1, max_size=200))
                with fs.open(name) as handle:
                    handle.pwrite(offset, payload)
                model[name][offset] = payload
            elif action == "read" and model:
                name = data.draw(st.sampled_from(sorted(model)))
                for offset, payload in model[name].items():
                    later = {
                        o: p for o, p in model[name].items()
                        if o > offset and o < offset + len(payload)
                    }
                    if later:
                        continue  # overlapped by a later write
                    with fs.open(name) as handle:
                        assert handle.pread(offset, len(payload)) == payload
            elif action == "unlink" and model:
                name = data.draw(st.sampled_from(sorted(model)))
                fs.unlink(name)
                del model[name]
        assert fs.file_count() == len(model)

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_pmfs_space_conservation(self, sizes_pages):
        """Creating and unlinking any set of files returns every block."""
        kernel = small_kernel()
        free_before = kernel.nvm_allocator.free_blocks
        for index, pages in enumerate(sizes_pages):
            kernel.pmfs.create(f"/s{index}", size=pages * PAGE_SIZE)
        for index in range(len(sizes_pages)):
            kernel.pmfs.unlink(f"/s{index}")
        assert kernel.nvm_allocator.free_blocks == free_before
