"""Branch coverage for mem-layer edge cases the main suites skip."""

import pytest

from repro.errors import NoSpaceError, OutOfMemoryError
from repro.fs.pmfs import BlockAllocator
from repro.hw.clock import EventCounters, SimClock
from repro.hw.costmodel import CostModel, MemoryTechnology
from repro.mem.bitmap import Bitmap
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion
from repro.units import KIB, MIB, PAGE_SIZE


class TestBuddyOddRegions:
    def test_non_power_of_two_region_fully_usable(self):
        # 3 MiB region = 768 frames; seeding must cover every frame.
        region = MemoryRegion(start=0, size=3 * MIB, tech=MemoryTechnology.DRAM)
        buddy = BuddyAllocator(region, max_order=10)
        assert buddy.free_frames == 768
        taken = 0
        while True:
            try:
                buddy.alloc(0)
                taken += 1
            except OutOfMemoryError:
                break
        assert taken == 768

    def test_offset_region_seed_alignment(self):
        # A region whose start is 2 MiB-aligned in absolute PFNs seeds a
        # full order-9 block at its base.
        region = MemoryRegion(
            start=4 * MIB, size=2 * MIB, tech=MemoryTechnology.DRAM
        )
        buddy = BuddyAllocator(region, max_order=9)
        pfn = buddy.alloc(9)  # one 2 MiB block
        assert pfn == 4 * MIB // PAGE_SIZE

    def test_misaligned_region_cannot_mint_aligned_blocks(self):
        # 5 MiB start is not 2 MiB-aligned: no order-9 block can exist,
        # because buddy alignment is absolute.
        region = MemoryRegion(
            start=5 * MIB, size=2 * MIB, tech=MemoryTechnology.DRAM
        )
        buddy = BuddyAllocator(region, max_order=9)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(9)
        assert buddy.free_frames == 512  # nothing lost, just fragmented

    def test_max_order_zero_degenerates_to_page_allocator(self):
        region = MemoryRegion(start=0, size=64 * KIB, tech=MemoryTechnology.DRAM)
        buddy = BuddyAllocator(region, max_order=0)
        pfns = [buddy.alloc(0) for _ in range(16)]
        assert len(set(pfns)) == 16
        for pfn in pfns:
            buddy.free(pfn)
        assert buddy.largest_free_order() == 0  # cannot coalesce past order 0


class TestBitmapWrap:
    def test_hint_beyond_size_wraps(self):
        bitmap = Bitmap(32)
        assert bitmap.find_clear_run(4, start_hint=100) is not None

    def test_run_straddling_hint_found_after_wrap(self):
        bitmap = Bitmap(16)
        bitmap.set_range(6, 10)  # free: 0..5
        assert bitmap.find_clear_run(4, start_hint=8) == 0

    def test_full_scan_none(self):
        bitmap = Bitmap(8)
        bitmap.set_range(0, 4)
        bitmap.set_range(5, 3)
        assert bitmap.find_clear_run(2) is None
        assert bitmap.find_clear_run(1) == 4


class TestBlockAllocatorRollback:
    def make(self, blocks=64):
        region = MemoryRegion(
            start=0, size=blocks * PAGE_SIZE, tech=MemoryTechnology.NVM
        )
        return BlockAllocator(
            region, SimClock(), CostModel(), EventCounters()
        )

    def test_best_effort_rolls_back_on_failure(self):
        alloc = self.make(blocks=64)
        alloc.alloc_extent(32)
        free_before = alloc.free_blocks
        with pytest.raises(NoSpaceError):
            alloc.alloc_best_effort(64)  # more than remains
        assert alloc.free_blocks == free_before  # partial grabs undone

    def test_aligned_search_skips_misaligned_candidates(self):
        alloc = self.make(blocks=64)
        alloc.alloc_extent(1)  # occupy block 0
        extent = alloc.alloc_extent(16, align_frames=16)
        assert extent.pfn % 16 == 0

    def test_alignment_impossible_returns_nospace(self):
        alloc = self.make(blocks=64)
        alloc.alloc_extent(1)  # the only 128-aligned start is now taken
        with pytest.raises(NoSpaceError):
            alloc.alloc_extent(32, align_frames=128)
