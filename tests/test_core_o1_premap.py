"""Pre-created page tables: build once, attach O(1), persist."""

import pytest

from repro.core.o1.premap import PageTableCache
from repro.errors import MappingError
from repro.units import HUGE_PAGE_2M, KIB, MIB, PAGE_SIZE
from repro.vm.vma import Protection


@pytest.fixture
def env(aligned_kernel):
    kernel = aligned_kernel
    cache = PageTableCache(
        kernel.config.page_table_levels,
        kernel.clock,
        kernel.costs,
        kernel.counters,
    )
    return kernel, cache


class TestBuild:
    def test_premap_builds_once(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        first = cache.premap(inode)
        second = cache.premap(inode)
        assert first is second
        assert kernel.counters.get("premap_build") == 1
        assert kernel.counters.get("premap_cache_hit") == 1

    def test_windows_cover_file(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=6 * MIB)
        premapped = cache.premap(inode)
        assert len(premapped.windows) == 3  # 6 MiB / 2 MiB

    def test_permissions_cached_separately(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        rw = cache.premap(inode, writable=True)
        ro = cache.premap(inode, writable=False)
        assert rw is not ro
        assert cache.cached_files == 2

    def test_empty_file_rejected(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/empty")
        with pytest.raises(MappingError):
            cache.premap(inode)


class TestAttach:
    def test_attach_costs_one_write_per_window(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=4 * MIB)
        cache.premap(inode)  # pre-build outside the measured region
        process = kernel.spawn("p")
        with kernel.measure() as m:
            cache.attach(process.space, inode)
        assert m.counter_delta.get("pte_write") == 2  # two 2 MiB windows

    def test_attached_mapping_translates(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        process = kernel.spawn("p")
        attachment = cache.attach(process.space, inode)
        paddr = kernel.access(process, attachment.vaddr + 5 * PAGE_SIZE)
        backing_pfn = kernel.pmfs.backing_for(inode).frame_for(5, False)
        assert paddr // PAGE_SIZE == backing_pfn

    def test_no_faults_after_attach(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        process = kernel.spawn("p")
        attachment = cache.attach(process.space, inode)
        kernel.access_range(process, attachment.vaddr, 2 * MIB)
        assert kernel.counters.get("fault_trap") == 0

    def test_two_processes_share_one_build(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        a, b = kernel.spawn("a"), kernel.spawn("b")
        cache.attach(a.space, inode)
        before = kernel.counters.get("pt_node_alloc")
        before_pte = kernel.counters.get("pte_write")
        cache.attach(b.space, inode)
        # Only b's own interior path is created (a constant <= levels-1
        # nodes); the 512 leaf PTEs are shared, so one link write suffices.
        assert kernel.counters.get("pt_node_alloc") - before <= 3
        assert kernel.counters.get("pte_write") - before_pte == 1

    def test_misaligned_attach_rejected(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        process = kernel.spawn("p")
        with pytest.raises(MappingError):
            cache.attach(process.space, inode, vaddr=HUGE_PAGE_2M + PAGE_SIZE)

    def test_detach_is_o_windows(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        process = kernel.spawn("p")
        attachment = cache.attach(process.space, inode)
        kernel.access(process, attachment.vaddr)
        with kernel.measure() as m:
            cache.detach(attachment)
        assert m.counter_delta.get("pte_write") == 1  # one unlink
        assert process.space.vmas == []

    def test_access_after_detach_segfaults(self, env):
        from repro.errors import ProtectionError

        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        process = kernel.spawn("p")
        attachment = cache.attach(process.space, inode)
        kernel.access(process, attachment.vaddr)
        cache.detach(attachment)
        with pytest.raises(ProtectionError):
            kernel.access(process, attachment.vaddr)

    def test_readonly_attach_blocks_writes(self, env):
        from repro.errors import ProtectionError

        kernel, cache = env
        inode = kernel.pmfs.create("/f", size=2 * MIB)
        process = kernel.spawn("p")
        attachment = cache.attach(process.space, inode, prot=Protection.READ)
        kernel.access(process, attachment.vaddr)
        with pytest.raises(ProtectionError):
            kernel.access(process, attachment.vaddr, write=True)


class TestPersistence:
    def test_persist_requires_persistent_fs(self, env):
        kernel, cache = env
        volatile = kernel.tmpfs.create("/v", size=2 * MIB)
        with pytest.raises(MappingError):
            cache.persist(volatile)

    def test_persistent_entries_survive_crash(self, env):
        kernel, cache = env
        keep = kernel.pmfs.create("/keep", size=2 * MIB)
        drop = kernel.pmfs.create("/drop", size=2 * MIB)
        cache.persist(keep)
        cache.premap(drop)
        survivors = cache.on_crash()
        assert survivors == 1
        assert cache.cached_files == 1

    def test_first_map_after_crash_is_o1(self, env):
        kernel, cache = env
        inode = kernel.pmfs.create("/keep", size=2 * MIB)
        cache.persist(inode)
        cache.on_crash()
        process = kernel.spawn("reborn")
        with kernel.measure() as m:
            cache.attach(process.space, inode)
        assert m.counter_delta.get("premap_build") is None  # cache hit
        assert m.counter_delta.get("pte_write") == 1
