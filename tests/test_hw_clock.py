"""SimClock and EventCounters."""

import pytest

from repro.hw.clock import EventCounters, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.now == 350

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0)
        assert clock.now == 0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_elapsed_since(self):
        clock = SimClock()
        clock.advance(10)
        start = clock.now
        clock.advance(32)
        assert clock.elapsed_since(start) == 32


class TestEventCounters:
    def test_unset_counter_reads_zero(self):
        assert EventCounters().get("nothing") == 0

    def test_bump_default_and_amount(self):
        counters = EventCounters()
        counters.bump("faults")
        counters.bump("faults", 4)
        assert counters.get("faults") == 5

    def test_snapshot_delta(self):
        counters = EventCounters()
        counters.bump("a", 2)
        snap = counters.snapshot()
        counters.bump("a")
        counters.bump("b", 3)
        delta = counters.delta_since(snap)
        assert delta == {"a": 1, "b": 3}

    def test_delta_omits_unchanged(self):
        counters = EventCounters()
        counters.bump("a", 2)
        snap = counters.snapshot()
        assert counters.delta_since(snap) == {}

    def test_reset(self):
        counters = EventCounters()
        counters.bump("x", 9)
        counters.reset()
        assert counters.get("x") == 0

    def test_iteration_sorted(self):
        counters = EventCounters()
        counters.bump("zeta")
        counters.bump("alpha")
        assert [name for name, _ in counters] == ["alpha", "zeta"]
