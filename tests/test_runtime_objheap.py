"""Region-based object heap: bump allocation, whole-region death."""

import pytest

from repro.core.fom import FileOnlyMemory
from repro.errors import MappingError, OutOfMemoryError
from repro.runtime import ObjectHeap
from repro.units import KIB, MIB


@pytest.fixture
def heap(aligned_kernel):
    fom = FileOnlyMemory(aligned_kernel)
    process = aligned_kernel.spawn("rt")
    return ObjectHeap(fom, process), aligned_kernel


class TestAllocation:
    def test_distinct_addresses(self, heap):
        objheap, _ = heap
        refs = [objheap.new(100) for _ in range(50)]
        assert len({ref.addr for ref in refs}) == 50

    def test_objects_fill_one_region(self, heap):
        objheap, _ = heap
        for _ in range(100):
            objheap.new(64)
        assert objheap.live_regions == 1

    def test_region_overflow_opens_new(self, heap):
        objheap, _ = heap
        objheap.new(512 * KIB)
        objheap.new(1900 * KIB)  # cannot fit behind the first object
        assert objheap.live_regions == 2

    def test_new_is_o1_no_faults(self, heap):
        objheap, kernel = heap
        objheap.new(16)  # open the region outside the measured block
        with kernel.measure() as m:
            for _ in range(500):
                objheap.new(64)
        assert m.counter_delta.get("fault_trap") is None
        assert m.counter_delta.get("pte_write") is None

    def test_explicit_region_placement(self, heap):
        objheap, _ = heap
        region = objheap.create_region()
        ref = objheap.new(128, region=region)
        assert ref.region_id == region.region_id
        assert objheap.region_of(ref) is region

    def test_explicit_full_region_raises(self, heap):
        objheap, _ = heap
        region = objheap.create_region()
        objheap.new(1 * MIB, region=region)
        with pytest.raises(OutOfMemoryError):
            objheap.new(1536 * KIB, region=region)

    def test_oversized_object_rejected(self, heap):
        objheap, _ = heap
        with pytest.raises(MappingError):
            objheap.new(4 * MIB)
        with pytest.raises(MappingError):
            objheap.new(0)


class TestRegionDeath:
    def test_free_region_is_one_release(self, heap):
        objheap, kernel = heap
        region = objheap.create_region()
        for _ in range(1000):
            objheap.new(64, region=region)
        with kernel.measure() as m:
            died = objheap.free_region(region)
        assert died == 1000
        assert m.counter_delta.get("fom_release") == 1
        # One file unlink — no per-object work.
        assert m.counter_delta.get("extent_free") == 1

    def test_free_region_cost_independent_of_objects(self, heap):
        objheap, kernel = heap
        sparse = objheap.create_region()
        objheap.new(64, region=sparse)
        dense = objheap.create_region()
        for _ in range(2000):
            objheap.new(64, region=dense)
        with kernel.measure() as m_sparse:
            objheap.free_region(sparse)
        with kernel.measure() as m_dense:
            objheap.free_region(dense)
        assert m_sparse.elapsed_ns == m_dense.elapsed_ns

    def test_double_free_rejected(self, heap):
        objheap, _ = heap
        region = objheap.create_region()
        objheap.free_region(region)
        with pytest.raises(MappingError):
            objheap.free_region(region)

    def test_region_of_dead_region_raises(self, heap):
        objheap, _ = heap
        region = objheap.create_region()
        ref = objheap.new(64, region=region)
        objheap.free_region(region)
        with pytest.raises(MappingError):
            objheap.region_of(ref)

    def test_current_region_replaced_after_free(self, heap):
        objheap, _ = heap
        ref = objheap.new(64)
        objheap.free_region(objheap.region_of(ref))
        again = objheap.new(64)  # must open a fresh region
        assert again.region_id != ref.region_id

    def test_destroy_frees_all(self, heap):
        objheap, kernel = heap
        for _ in range(3):
            region = objheap.create_region()
            objheap.new(64, region=region)
        objheap.destroy()
        assert objheap.live_regions == 0

    def test_stats(self, heap):
        objheap, _ = heap
        objheap.new(100)
        objheap.new(200)
        stats = objheap.stats()
        assert stats["allocated_objects"] == 2
        assert stats["live_objects"] == 2
        assert stats["used_bytes"] > 300
        assert stats["capacity_bytes"] == 2 * MIB
