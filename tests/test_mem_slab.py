"""Slab allocator: carving, reuse, reaping."""

import pytest

from repro.errors import OutOfMemoryError
from repro.hw.costmodel import MemoryTechnology
from repro.mem.buddy import BuddyAllocator
from repro.mem.physical import MemoryRegion
from repro.mem.slab import SlabCache
from repro.units import MIB, PAGE_SIZE


def make_cache(object_size=256, slab_order=0, region_size=MIB):
    region = MemoryRegion(start=0, size=region_size, tech=MemoryTechnology.DRAM)
    buddy = BuddyAllocator(region)
    return SlabCache("t", object_size, buddy, slab_order=slab_order), buddy


class TestAllocation:
    def test_alloc_returns_distinct_addresses(self):
        cache, _ = make_cache()
        addrs = {cache.alloc() for _ in range(32)}
        assert len(addrs) == 32

    def test_addresses_object_aligned_within_slab(self):
        cache, _ = make_cache(object_size=256)
        addr = cache.alloc()
        assert (addr % PAGE_SIZE) % 256 == 0

    def test_one_slab_serves_many_objects(self):
        cache, buddy = make_cache(object_size=64)
        before = buddy.free_frames
        for _ in range(PAGE_SIZE // 64):
            cache.alloc()
        assert before - buddy.free_frames == 1  # one backing frame

    def test_grows_when_full(self):
        cache, buddy = make_cache(object_size=PAGE_SIZE)
        cache.alloc()
        cache.alloc()
        assert cache.slab_count == 2

    def test_object_bigger_than_slab_rejected(self):
        with pytest.raises(ValueError):
            make_cache(object_size=2 * PAGE_SIZE, slab_order=0)

    def test_larger_slab_order(self):
        cache, _ = make_cache(object_size=PAGE_SIZE, slab_order=2)
        for _ in range(4):
            cache.alloc()
        assert cache.slab_count == 1

    def test_bad_object_size_rejected(self):
        with pytest.raises(ValueError):
            make_cache(object_size=0)


class TestFreeAndReap:
    def test_free_reuses_slot(self):
        cache, _ = make_cache()
        addr = cache.alloc()
        keep = cache.alloc()  # keep the slab non-empty so it isn't reaped
        cache.free(addr)
        assert cache.alloc() == addr
        assert keep != addr

    def test_free_unknown_rejected(self):
        cache, _ = make_cache()
        with pytest.raises(ValueError):
            cache.free(0xDEAD)

    def test_empty_slab_returned_to_buddy(self):
        cache, buddy = make_cache(object_size=2048)
        before = buddy.free_frames
        first = cache.alloc()
        second = cache.alloc()
        cache.free(first)
        cache.free(second)
        assert cache.slab_count == 0
        assert buddy.free_frames == before

    def test_full_to_partial_transition(self):
        cache, _ = make_cache(object_size=2048)  # 2 slots per slab
        a = cache.alloc()
        b = cache.alloc()  # slab now full
        cache.free(a)  # back to partial
        c = cache.alloc()
        assert c == a
        assert cache.slab_count == 1

    def test_stats(self):
        cache, _ = make_cache(object_size=1024)
        cache.alloc()
        stats = cache.stats()
        assert stats["live_objects"] == 1
        assert stats["slots_per_slab"] == 4
        assert stats["wasted_slots"] == 3

    def test_oom_propagates_with_cache_name(self):
        region = MemoryRegion(start=0, size=PAGE_SIZE, tech=MemoryTechnology.DRAM)
        buddy = BuddyAllocator(region, max_order=0)
        cache = SlabCache("tiny", PAGE_SIZE, buddy)
        cache.alloc()
        with pytest.raises(OutOfMemoryError, match="tiny"):
            cache.alloc()
