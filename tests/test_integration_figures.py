"""Integration tests asserting the *shape* of every paper figure.

Each test reproduces a figure's workload end to end through the kernel
and checks the qualitative claim the paper makes about it — constants stay
constant, linear costs grow linearly, ratios exceed the thresholds the
text quotes.  The benchmarks print the full tables; these tests pin the
claims so regressions fail loudly.
"""

import pytest

from repro.core.fom import FileOnlyMemory, MapStrategy
from repro.core.rangetrans import RangeMemory
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, PAGE_SIZE, USEC
from repro.vm.vma import MapFlags, Protection

SIZES_KB = [4, 16, 64, 256, 1024]


def fresh_kernel(**overrides):
    config = dict(dram_bytes=512 * MIB, nvm_bytes=2 * GIB)
    config.update(overrides)
    return Kernel(MachineConfig(**config))


def mmap_time(kernel, size, flags, fs=None, warm=False):
    process = kernel.spawn("m")
    sys = kernel.syscalls(process)
    fd = sys.open(fs or kernel.tmpfs, f"/f{size}{flags}", create=True, size=size)
    if warm:
        # Paper methodology: reads are measured "after writing to the
        # allocated pages first" — data lines are LLC-warm.
        kernel.warm_file(process.fd(fd).inode)
    with kernel.measure() as m:
        va = sys.mmap(size, fd=fd, flags=flags)
    return m.elapsed_ns, va, process


class TestFigure1a:
    """mmap cost: demand constant, populate linear (Fig 1a / 6a)."""

    def test_demand_mmap_constant_across_sizes(self):
        times = []
        for size_kb in SIZES_KB:
            kernel = fresh_kernel()
            ns, _, _ = mmap_time(kernel, size_kb * KIB, MapFlags.PRIVATE)
            times.append(ns)
        assert max(times) == min(times)  # exactly constant in simulation

    def test_demand_mmap_near_8us_anchor(self):
        kernel = fresh_kernel()
        ns, _, _ = mmap_time(kernel, 64 * KIB, MapFlags.PRIVATE)
        assert 6 * USEC <= ns <= 10 * USEC

    def test_populate_mmap_linear(self):
        times = {}
        for size_kb in (4, 1024):
            kernel = fresh_kernel()
            ns, _, _ = mmap_time(
                kernel, size_kb * KIB, MapFlags.PRIVATE | MapFlags.POPULATE
            )
            times[size_kb] = ns
        # 256x the pages -> cost within 2x of 256x growth above the base.
        assert times[1024] > 50 * times[4] / (1024 / 4) * 100

    def test_populate_1mb_near_paper_250us(self):
        kernel = fresh_kernel()
        ns, _, _ = mmap_time(kernel, 1024 * KIB, MapFlags.PRIVATE | MapFlags.POPULATE)
        assert 150 * USEC <= ns <= 350 * USEC


class TestFigure1b:
    """Touch one byte per page: demand >50x populate (Fig 1b / 6b)."""

    def read_costs(self, size):
        kernel = fresh_kernel()
        demand_ns, va, process = mmap_time(kernel, size, MapFlags.PRIVATE, warm=True)
        with kernel.measure() as m:
            kernel.access_range(process, va, size)
        demand_read = m.elapsed_ns
        kernel2 = fresh_kernel()
        _, va2, process2 = mmap_time(
            kernel2, size, MapFlags.PRIVATE | MapFlags.POPULATE, warm=True
        )
        with kernel2.measure() as m2:
            kernel2.access_range(process2, va2, size)
        populate_read = m2.elapsed_ns
        return demand_read, populate_read

    def test_demand_read_linear_in_size(self):
        small, _ = self.read_costs(4 * KIB)
        big, _ = self.read_costs(1024 * KIB)
        assert big > 100 * small

    def test_paper_50x_claim_at_1mb(self):
        demand, populate = self.read_costs(1024 * KIB)
        assert demand > 50 * populate

    def test_populated_read_small_files_near_zero(self):
        # Student figure: "time to read the file of size up to 128 KB is
        # zero with map_populate" (i.e. < 1 us at their resolution).
        _, populate = self.read_costs(128 * KIB)
        assert populate < 2 * USEC

    def test_mechanism_faults_vs_none(self):
        kernel = fresh_kernel()
        _, va, process = mmap_time(kernel, 64 * KIB, MapFlags.PRIVATE)
        kernel.access_range(process, va, 64 * KIB)
        assert process.space.fault_stats_total() == 16


class TestFigure2:
    """malloc vs PMFS-file allocation: little extra cost (Fig 2 / 7)."""

    def alloc_and_touch(self, kernel, npages, use_pmfs):
        process = kernel.spawn("w")
        sys = kernel.syscalls(process)
        size = npages * PAGE_SIZE
        if use_pmfs:
            fd = sys.open(kernel.pmfs, f"/alloc{npages}", create=True, size=size)
            with kernel.measure() as m:
                va = sys.mmap(size, fd=fd, flags=MapFlags.SHARED)
                kernel.access_range(process, va, size, write=True)
        else:
            with kernel.measure() as m:
                va = sys.mmap(size)
                kernel.access_range(process, va, size, write=True)
        return m.elapsed_ns

    @pytest.mark.parametrize("npages", [16, 256, 1024])
    def test_pmfs_within_35_percent_of_malloc(self, npages):
        malloc_ns = self.alloc_and_touch(fresh_kernel(), npages, use_pmfs=False)
        pmfs_ns = self.alloc_and_touch(fresh_kernel(), npages, use_pmfs=True)
        assert abs(pmfs_ns - malloc_ns) / malloc_ns < 0.35

    def test_both_linear(self):
        malloc_small = self.alloc_and_touch(fresh_kernel(), 16, False)
        malloc_big = self.alloc_and_touch(fresh_kernel(), 1024, False)
        assert malloc_big > 30 * malloc_small


class TestFigure3Pbm:
    """Shared mappings: second process pays O(windows) (Fig 3 / 8)."""

    def test_sharing_win(self):
        from repro.core.pbm import PbmManager

        kernel = fresh_kernel(pmfs_extent_align_frames=512)
        pbm = PbmManager(kernel)
        inode = kernel.pmfs.create("/shared", size=8 * MIB)
        first_process = kernel.spawn("first")
        with kernel.measure() as first:
            pbm.map_file(first_process, inode)
        second_process = kernel.spawn("second")
        with kernel.measure() as second:
            pbm.map_file(second_process, inode)
        assert second.elapsed_ns < first.elapsed_ns / 5
        # 8 MiB = four 2 MiB windows: four link writes instead of 2048 PTEs.
        assert second.counter_delta.get("pte_write", 0) <= 4
        assert first.counter_delta.get("pte_write", 0) >= 2048


class TestFigure9Range:
    """Range translations: O(1) map and unmap (Fig 4/5/9)."""

    def test_rte_count_constant_across_sizes(self):
        for size in (1 * MIB, 64 * MIB, 512 * MIB):
            kernel = fresh_kernel(range_hardware=True, nvm_bytes=2 * GIB)
            rm = RangeMemory(kernel)
            inode = kernel.pmfs.create("/r", size=size)
            mapping = rm.map_file(kernel.spawn("p"), inode)
            assert mapping.entry_count == 1

    def test_sparse_access_no_walks(self):
        kernel = fresh_kernel(range_hardware=True)
        rm = RangeMemory(kernel)
        inode = kernel.pmfs.create("/r", size=128 * MIB)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode)
        kernel.access_range(process, mapping.vaddr, 128 * MIB, stride=1 * MIB)
        assert kernel.counters.get("walk_start") == 0

    def test_range_beats_paging_for_sparse_large(self):
        # Paging side.
        kernel_pt = fresh_kernel()
        process = kernel_pt.spawn("pt")
        sys = kernel_pt.syscalls(process)
        fd = sys.open(kernel_pt.pmfs, "/big", create=True, size=128 * MIB)
        va = sys.mmap(128 * MIB, fd=fd, flags=MapFlags.SHARED)
        with kernel_pt.measure() as paging:
            kernel_pt.access_range(process, va, 128 * MIB, stride=1 * MIB)
        # Range side.
        kernel_rt = fresh_kernel(range_hardware=True)
        rm = RangeMemory(kernel_rt)
        inode = kernel_rt.pmfs.create("/big", size=128 * MIB)
        process_rt = kernel_rt.spawn("rt")
        mapping = rm.map_file(process_rt, inode)
        with kernel_rt.measure() as ranged:
            kernel_rt.access_range(
                process_rt, mapping.vaddr, 128 * MIB, stride=1 * MIB
            )
        assert ranged.elapsed_ns < paging.elapsed_ns / 5


class TestClaimReadVsMmap:
    """§3.2: read() of 16 KB can beat touching cold mapped memory."""

    def test_read_beats_cold_mapped_access_under_nested_paging(self):
        # The claim holds when TLB misses are expensive: virtualized
        # 2-D walks with cold caches.
        kernel = fresh_kernel(virtualized=True, page_table_levels=5)
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        fd = sys.open(kernel.tmpfs, "/data", create=True, size=16 * KIB)
        va = sys.mmap(
            16 * KIB, fd=fd, flags=MapFlags.SHARED | MapFlags.POPULATE
        )
        kernel.cache.flush()
        kernel.tlb.flush_all()
        with kernel.measure() as mapped:
            kernel.access_range(process, va, 16 * KIB, stride=64)
        with kernel.measure() as read_call:
            sys.pread(fd, 0, 16 * KIB)
        assert read_call.elapsed_ns < mapped.elapsed_ns


class TestO1FomEnd2End:
    """The paper's bottom line: FOM operations stay constant as size grows."""

    def test_fom_allocate_constant_pte_per_extent(self):
        kernel = fresh_kernel(pmfs_extent_align_frames=512, nvm_bytes=4 * GIB)
        fom = FileOnlyMemory(kernel)
        process = kernel.spawn("p")
        deltas = []
        for size in (2 * MIB, 32 * MIB, 512 * MIB):
            with kernel.measure() as m:
                fom.allocate(process, size)
            deltas.append(m.counter_delta)
        assert all(d.get("extent_alloc") == 1 for d in deltas)
        assert all(d.get("fault_minor") is None for d in deltas)

    def test_fom_release_is_whole_file(self):
        kernel = fresh_kernel(pmfs_extent_align_frames=512)
        fom = FileOnlyMemory(kernel)
        process = kernel.spawn("p")
        region = fom.allocate(process, 64 * MIB)
        with kernel.measure() as m:
            fom.release(region)
        # One extent free, no per-page frame metadata churn.
        assert m.counter_delta.get("extent_free") == 1
        assert m.counter_delta.get("frame_meta_touch") is None
