"""Range translations over fragmented files: one RTE per extent, exactly."""

import pytest

from repro.core.rangetrans import RangeMemory
from repro.units import GIB, MIB, PAGE_SIZE


@pytest.fixture
def env(range_kernel):
    return range_kernel, RangeMemory(range_kernel)


def make_fragmented_file(kernel, pieces=4, piece_pages=64):
    """A file whose extents are deliberately discontiguous."""
    fs = kernel.pmfs
    saved = fs.extent_align_frames
    fs.extent_align_frames = 1
    try:
        inode = fs.create("/frag")
        spacers = []
        for index in range(pieces):
            fs.truncate(inode, (index + 1) * piece_pages * PAGE_SIZE)
            # Burn a block so the next extent cannot merge.
            spacers.append(kernel.nvm_allocator.alloc_extent(1))
        return inode, fs.extent_count(inode)
    finally:
        fs.extent_align_frames = saved


class TestFragmentedRanges:
    def test_rte_count_equals_extent_count(self, env):
        kernel, rm = env
        inode, extents = make_fragmented_file(kernel)
        assert extents > 1  # the setup really fragmented it
        mapping = rm.map_file(kernel.spawn("p"), inode)
        assert mapping.entry_count == extents

    def test_every_extent_translates_correctly(self, env):
        kernel, rm = env
        inode, _ = make_fragmented_file(kernel, pieces=3, piece_pages=32)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode)
        tree = kernel.pmfs._tree_of(inode)
        for logical in (0, 40, 70, 95):
            paddr = kernel.access(
                process, mapping.vaddr + logical * PAGE_SIZE
            )
            pfn, _ = tree.lookup(logical)
            assert paddr == pfn * PAGE_SIZE

    def test_boundary_pages_between_extents(self, env):
        kernel, rm = env
        inode, _ = make_fragmented_file(kernel, pieces=2, piece_pages=16)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode)
        tree = kernel.pmfs._tree_of(inode)
        last_of_first = kernel.access(
            process, mapping.vaddr + 15 * PAGE_SIZE + PAGE_SIZE - 1
        )
        first_of_second = kernel.access(
            process, mapping.vaddr + 16 * PAGE_SIZE
        )
        assert last_of_first == tree.lookup(15)[0] * PAGE_SIZE + PAGE_SIZE - 1
        assert first_of_second == tree.lookup(16)[0] * PAGE_SIZE
        # The two sides live in different physical extents.
        assert abs(first_of_second - last_of_first) != 1

    def test_unmap_removes_every_rte(self, env):
        kernel, rm = env
        inode, extents = make_fragmented_file(kernel)
        process = kernel.spawn("p")
        mapping = rm.map_file(process, inode)
        kernel.access(process, mapping.vaddr)
        with kernel.measure() as m:
            rm.unmap(mapping)
        assert m.counter_delta.get("rte_remove") == extents
        assert rm.table_for(process.space).entry_count == 0

    def test_fragmented_still_beats_paging(self, env):
        kernel, rm = env
        inode, extents = make_fragmented_file(kernel, pieces=6, piece_pages=128)
        process = kernel.spawn("p")
        with kernel.measure() as m:
            rm.map_file(process, inode)
        # 6 RTE writes instead of 768 PTE writes.
        assert m.counter_delta.get("rte_write") == extents
        assert m.counter_delta.get("pte_write") is None
