"""Experiment sweeps and table formatting."""

import pytest

from repro.analysis import Series, format_ratio, format_series_table, format_table, sweep


class TestSeries:
    def test_add_and_lookup(self):
        series = Series("s")
        series.add(1, 10.0)
        series.add(2, 20.0, {"faults": 3})
        assert series.y_at(2) == 20.0
        assert series.meta[1] == {"faults": 3}

    def test_roughly_constant(self):
        flat = Series("flat", xs=[1, 2, 3], ys=[100, 110, 105])
        steep = Series("steep", xs=[1, 2, 3], ys=[100, 1000, 10000])
        assert flat.is_roughly_constant(tolerance=0.2)
        assert not steep.is_roughly_constant()

    def test_roughly_constant_edge_cases(self):
        assert Series("empty").is_roughly_constant()
        assert Series("zeros", xs=[1], ys=[0]).is_roughly_constant()

    def test_is_increasing(self):
        assert Series("up", xs=[1, 2, 3], ys=[1, 2, 3]).is_increasing()
        assert not Series("down", xs=[1, 2, 3], ys=[3, 2, 1]).is_increasing()
        # Sorts by x before checking.
        assert Series("shuffled", xs=[3, 1, 2], ys=[9, 1, 4]).is_increasing()

    def test_growth_factor(self):
        series = Series("g", xs=[1, 2, 4], ys=[10, 20, 80])
        assert series.growth_factor() == 8.0

    def test_sweep_runs_body_per_parameter(self):
        calls = []

        def body(x):
            calls.append(x)
            return x * 2.0, {"n": int(x)}

        series = sweep("test", [1, 2, 3], body)
        assert calls == [1, 2, 3]
        assert series.ys == [2.0, 4.0, 6.0]
        assert series.meta[2] == {"n": 3}


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_table_validates(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_table(self):
        a = Series("alpha", xs=[4, 16], ys=[1000, 2000])
        b = Series("beta", xs=[4, 16], ys=[3000, 4000])
        text = format_series_table([a, b], x_label="KB")
        assert "alpha (us)" in text and "beta (us)" in text
        assert "1.00" in text and "4.00" in text

    def test_format_series_table_mismatched_xs(self):
        a = Series("a", xs=[1], ys=[1])
        b = Series("b", xs=[2], ys=[1])
        with pytest.raises(ValueError):
            format_series_table([a, b])
        with pytest.raises(ValueError):
            format_series_table([])

    def test_format_ratio(self):
        assert format_ratio(100, 8) == "12.5x"
        assert format_ratio(1, 0) == "inf"
