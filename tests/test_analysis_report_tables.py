"""Table rendering/parsing and the trace-derived report builders.

Covers the report.py/tables.py surface the existing suites skip:
``parse_table`` round-trips, ``format_table`` error paths, and the
attribution / histogram / counter report builders.
"""

import pytest

from repro.analysis.report import (
    attribution_report,
    counters_report,
    histogram_report,
)
from repro.analysis.tables import format_table, parse_table


class TestFormatTable:
    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError, match="at least one header"):
            format_table([], [])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_pads_to_widest_cell(self):
        text = format_table(["x", "label"], [[1, "a"], [100, "bb"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert lines[1].strip("- ") == ""  # header rule


class TestParseTable:
    def test_round_trip_casts_numbers(self):
        text = format_table(
            ["size", "cost (us)", "name"],
            [[8, "2.50", "mmap"], [16, "2.50", "munmap"]],
        )
        records = parse_table(text)
        assert records == [
            {"size": 8, "cost (us)": 2.5, "name": "mmap"},
            {"size": 16, "cost (us)": 2.5, "name": "munmap"},
        ]

    def test_empty_text_parses_to_nothing(self):
        assert parse_table("") == []
        assert parse_table("just one line") == []

    def test_skips_malformed_rows(self):
        text = format_table(["a", "b"], [[1, 2]]) + "\nonly-one-cell\n"
        assert parse_table(text) == [{"a": 1, "b": 2}]


class TestAttributionReport:
    def test_groups_by_subsystem_with_shares(self):
        attribution = {
            (1, "fault"): 750,
            (2, "fault"): 150,
            (1, "fs"): 100,
        }
        text = attribution_report(
            attribution, total_ns=1000, process_names={1: "app", 2: "bg"}
        )
        lines = text.splitlines()
        # Largest subsystem first, largest process first inside it.
        assert "fault" in lines[2] and "app" in lines[2]
        assert "75.0%" in lines[2]
        assert "bg" in lines[3]
        assert "total" in lines[-1]

    def test_unnamed_pids_and_zero_total(self):
        text = attribution_report({(7, "fs"): 10}, total_ns=0)
        assert "pid 7" in text
        assert "-" in text  # share is undefined at zero elapsed


class TestLiveReports:
    def test_histogram_report_lists_measured_spans(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        va = sys.mmap(64 * 1024)
        with kernel.measure(trace=True):
            kernel.access_range(process, va, 64 * 1024)
        text = histogram_report(kernel.counters)
        assert "p50" in text and "p99" in text
        assert "page_walk" in text

    def test_counters_report_sorted_two_columns(self, kernel):
        process = kernel.spawn("p")
        sys = kernel.syscalls(process)
        va = sys.mmap(16 * 1024)
        kernel.access(process, va)
        text = counters_report(kernel.counters)
        records = parse_table(text)
        names = [r["counter"] for r in records]
        assert names == sorted(names)
        assert any(r["counter"] == "fault_minor" for r in records)
