"""RAS efficacy: each deliberately broken repair path trips its oracle.

Three mutants, mirroring the sanitizer-efficacy discipline — prove the
check *can* fail before trusting that it passes:

* a scrubber that "handles" dead frames without retiring them → the
  RAS audit's dead-frame-in-service invariant
* a migration that forgets the translation teardown → TransSan's
  dangling-translation check fired from the retirement hook
* a badblock adoption whose journal commit is dropped → PersistSan

Each mutant is paired with its clean companion so the oracle's
false-positive rate on the correct path stays pinned at zero.
"""

from __future__ import annotations

import pytest

from repro.ras import FaultKind, MediaFaultModel
from repro.sanitize import SanitizerError
from repro.units import PAGE_SIZE
from repro.vm.vma import MapFlags


def _only_violation(suite):
    assert len(suite.violations) == 1, [v.format() for v in suite.violations]
    return suite.violations[0]


def _free_nvm_pfn(kernel) -> int:
    fs = kernel.pmfs
    first = kernel.nvm_region.first_pfn
    return next(
        pfn
        for pfn in range(first, first + 4096)
        if fs.allocator.block_is_free(pfn)
    )


class TestScrubberMutant:
    def test_scrubber_that_skips_retirement_fails_audit(
        self, kernel, monkeypatch
    ):
        ras = kernel.arm_ras(model=MediaFaultModel(faults_per_bind=0))
        pfn = _free_nvm_pfn(kernel)
        ras.model.inject(pfn, FaultKind.DEAD)

        # Mutant: the scrubber claims success on dead frames without
        # actually retiring them.
        monkeypatch.setattr(ras, "retire_frame", lambda _pfn: True)
        ras.scrubber.scrub_full()

        problems = ras.audit()
        assert any("still in service" in p for p in problems), problems

    def test_real_scrubber_passes_audit(self, kernel):
        ras = kernel.arm_ras(model=MediaFaultModel(faults_per_bind=0))
        pfn = _free_nvm_pfn(kernel)
        ras.model.inject(pfn, FaultKind.DEAD)
        ras.scrubber.scrub_full()
        assert ras.audit() == []


class TestMigrationMutant:
    def _map_file_block(self, kernel):
        process = kernel.spawn("mapper")
        sys_calls = kernel.syscalls(process)
        fd = sys_calls.open(
            kernel.pmfs, "/migrate", create=True, size=2 * PAGE_SIZE
        )
        va = sys_calls.mmap(
            2 * PAGE_SIZE, fd=fd, flags=MapFlags.SHARED | MapFlags.POPULATE
        )
        pfn = kernel.access(process, va, write=True) // PAGE_SIZE
        return process, va, pfn

    def test_forgotten_invalidation_trips_dangling_translation(
        self, kernel, monkeypatch
    ):
        # Sanitizers first, so the PTE map registered the translation.
        suite = kernel.arm_sanitizers()
        ras = kernel.arm_ras(model=MediaFaultModel(faults_per_bind=0))
        _process, _va, pfn = self._map_file_block(kernel)
        ras.model.inject(pfn, FaultKind.DEAD)

        # Mutant: migration moves the extent but leaves every PTE, TLB
        # entry and cached subtree still translating to the dead frame.
        monkeypatch.setattr(
            ras, "_invalidate_translations", lambda *a, **kw: None
        )
        with pytest.raises(SanitizerError, match="dangling-translation"):
            ras.retire_frame(pfn)
        violation = _only_violation(suite)
        assert violation.detector == "trans"

    def test_real_migration_is_clean_and_remaps(self, kernel):
        suite = kernel.arm_sanitizers()
        ras = kernel.arm_ras(model=MediaFaultModel(faults_per_bind=0))
        process, va, pfn = self._map_file_block(kernel)
        ras.model.inject(pfn, FaultKind.DEAD)

        assert ras.retire_frame(pfn)
        # The access re-faults onto the migrated frame.
        new_paddr = kernel.access(process, va)
        assert new_paddr // PAGE_SIZE != pfn
        assert suite.violations == []


class TestBadblockJournalMutant:
    def test_uncommitted_adoption_trips_persistsan(
        self, kernel, monkeypatch
    ):
        suite = kernel.arm_sanitizers()
        ras = kernel.arm_ras(model=MediaFaultModel(faults_per_bind=0))
        pfn = _free_nvm_pfn(kernel)
        ras.model.inject(pfn, FaultKind.DEAD)
        ras.badblock_inode()  # journal drop must hit the adoption itself

        # Mutant: the adoption's commit record never reaches NVM, yet
        # the metadata apply goes ahead — a crash would lose the list.
        monkeypatch.setattr(
            kernel.pmfs, "_journal_commit", lambda record: None
        )
        with pytest.raises(SanitizerError, match="apply-before-commit"):
            ras.retire_frame(pfn)
        violation = _only_violation(suite)
        assert violation.detector == "persist"

    def test_journaled_adoption_is_clean(self, kernel):
        suite = kernel.arm_sanitizers()
        ras = kernel.arm_ras(model=MediaFaultModel(faults_per_bind=0))
        pfn = _free_nvm_pfn(kernel)
        ras.model.inject(pfn, FaultKind.DEAD)
        assert ras.retire_frame(pfn)
        assert pfn in ras.badblock_pfns()
        assert suite.violations == []
