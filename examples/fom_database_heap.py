#!/usr/bin/env python3
"""An in-memory database built on file-only memory.

The workload the paper's introduction motivates: a long-lived service
holding a large, mostly-idle dataset in ample persistent memory.  The
database:

* keeps its record heap in file-backed arenas (``FomHeap``) — malloc/free
  without per-page kernel work;
* stores its main table as a *named, persistent* region so it survives
  restarts;
* keeps its query caches in *discardable* files that the OS can reclaim
  whole under memory pressure (transcendent-memory style, §4.1).

Run:  python examples/fom_database_heap.py
"""

from repro.core.fom import FileOnlyMemory, FileReclaimer, FomHeap
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, KIB, MIB, fmt_bytes, fmt_ns
from repro.workloads import AllocTrace, TraceOp

RECORDS = 2000
CACHE_FILES = 4


def main() -> None:
    kernel = Kernel(
        MachineConfig(
            dram_bytes=1 * GIB, nvm_bytes=8 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
    fom = FileOnlyMemory(kernel)
    server = kernel.spawn("dbserver")

    # --- main table: named + persistent ------------------------------
    table = fom.allocate(
        server, 64 * MIB, name="/db/main-table", persistent=True
    )
    print(f"table mapped at {table.vaddr:#x} "
          f"({fmt_bytes(table.allocated_bytes)} as {table.path})")

    # --- record heap over file arenas ---------------------------------
    heap = FomHeap(fom, server)
    with kernel.measure() as insert_time:
        records = [heap.malloc(96) for _ in range(RECORDS)]
        for addr in records:
            kernel.access(server, addr, write=True)
    print(f"inserted {RECORDS} records in {fmt_ns(insert_time.elapsed_ns)} "
          f"({insert_time.counter_delta.get('fault_minor', 0)} faults, "
          f"{heap.stats()['arena_count']} arena file(s))")

    # Churn: delete half, insert again — O(1) free-list operations.
    with kernel.measure() as churn_time:
        for addr in records[::2]:
            heap.free(addr)
        for _ in range(RECORDS // 2):
            heap.malloc(96)
    print(f"churned {RECORDS} ops in {fmt_ns(churn_time.elapsed_ns)}")

    # --- discardable query caches --------------------------------------
    reclaimer = FileReclaimer(fom)
    for index in range(CACHE_FILES):
        cache = fom.allocate(
            server, 8 * MIB, name=f"/db/cache{index}", discardable=True
        )
        reclaimer.register(cache)
        kernel.clock.advance(10_000)  # caches age differently
        fom.touch_region(cache)
    print(f"{CACHE_FILES} cache files, "
          f"{fmt_bytes(reclaimer.reclaimable_bytes())} reclaimable")

    # Memory pressure: drop the two coldest caches — two unlinks, no scan.
    with kernel.measure() as pressure:
        freed, deleted = reclaimer.reclaim_bytes(16 * MIB)
    print(f"pressure: freed {fmt_bytes(freed)} by deleting {deleted} files "
          f"in {fmt_ns(pressure.elapsed_ns)}")

    # --- shutdown -------------------------------------------------------
    heap.destroy()
    fom.exit_process(server)
    print(f"shutdown complete; {table.path} persists: "
          f"{fom.fs.exists('/db/main-table')}")


if __name__ == "__main__":
    main()
