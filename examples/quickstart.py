#!/usr/bin/env python3
"""Quickstart: the baseline problem and the file-only-memory answer.

Builds a simulated machine, reproduces the paper's core measurement (the
per-page cost of demand paging vs. O(1) extent mapping), and prints the
numbers.  Five minutes of API tour:

* ``Kernel`` — the simulated machine (clock, CPU, memory, file systems);
* ``kernel.syscalls(process)`` — the POSIX-ish surface (open/mmap/read);
* ``kernel.measure()`` — simulated-nanosecond measurement blocks;
* ``FileOnlyMemory`` — the paper's design: allocate memory as files.

Run:  python examples/quickstart.py
"""

from repro.core.fom import FileOnlyMemory
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, fmt_ns
from repro.vm.vma import MapFlags

SIZE = 16 * MIB


def main() -> None:
    kernel = Kernel(
        MachineConfig(
            dram_bytes=1 * GIB,
            nvm_bytes=4 * GIB,
            pmfs_extent_align_frames=512,  # 2 MiB-aligned extents
        )
    )

    # ------------------------------------------------------------------
    # Baseline: anonymous mmap + demand paging.  Every page of the region
    # costs a fault: trap, VMA lookup, frame allocation, zeroing, PTE.
    # ------------------------------------------------------------------
    baseline = kernel.spawn("baseline")
    sys = kernel.syscalls(baseline)
    va = sys.mmap(SIZE)  # MAP_ANONYMOUS, demand-paged
    with kernel.measure() as demand:
        kernel.access_range(baseline, va, SIZE)  # touch every page
    faults = demand.counter_delta.get("fault_minor", 0)
    print(f"baseline: touching {SIZE // MIB} MiB took {fmt_ns(demand.elapsed_ns)} "
          f"({faults} minor faults)")

    # ------------------------------------------------------------------
    # File-only memory: the region is a file, allocated as one aligned
    # extent and mapped with 2 MiB pages up front.  No faults, few PTEs.
    # ------------------------------------------------------------------
    fom = FileOnlyMemory(kernel)
    app = kernel.spawn("fom-app")
    with kernel.measure() as alloc:
        region = fom.allocate(app, SIZE)
    with kernel.measure() as touch:
        kernel.access_range(app, region.vaddr, SIZE)
    print(f"file-only: allocate+map took {fmt_ns(alloc.elapsed_ns)} "
          f"({alloc.counter_delta.get('pte_write', 0)} PTE writes), "
          f"touching took {fmt_ns(touch.elapsed_ns)} "
          f"({touch.counter_delta.get('fault_minor', 0)} faults)")

    # Reclamation is one unlink, not a page scan.
    with kernel.measure() as release:
        fom.release(region)
    print(f"file-only: release (unmap + unlink) took {fmt_ns(release.elapsed_ns)}")

    # The space half of the space-for-time trade, on the record:
    ledger = fom.policy.ledger
    print(f"space-for-time ledger: requested {ledger.requested_bytes // MIB} MiB, "
          f"allocated {ledger.allocated_bytes // MIB} MiB "
          f"({ledger.overhead_ratio:.2f}x)")


if __name__ == "__main__":
    main()
