#!/usr/bin/env python3
"""Application-managed swapping with userfault regions.

File-only memory removes kernel swapping; §3.1 says "those applications
that need swapping could implement it themselves using techniques such as
userfaultfd".  This example builds exactly that: a compressed in-memory
swap for a working set larger than the budget the app allows itself.

The app keeps at most ``RESIDENT_BUDGET`` pages materialized.  On fault,
its handler decompresses the page from its private store; over budget, it
evicts the coldest page after compressing it — a tiny zswap, entirely in
user space, with the kernel only delivering faults.

Run:  python examples/userfault_swapper.py
"""

import zlib
from collections import OrderedDict

from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, PAGE_SIZE, fmt_ns
from repro.vm.userfault import UserFaultRegion
from repro.workloads import hot_cold_pages

REGION_PAGES = 256          # 1 MiB of virtual working set
RESIDENT_BUDGET = 64        # app allows itself 256 KiB resident
TOUCHES = 2000


class CompressedSwapper:
    """User-space pager: compressed store + LRU residency budget."""

    def __init__(self, kernel, process):
        self.kernel = kernel
        self.store = {}          # page -> compressed bytes
        self.resident = OrderedDict()  # page -> None, LRU order
        self.region = UserFaultRegion(
            kernel, process, REGION_PAGES * PAGE_SIZE, handler=self.on_fault
        )
        self.compressed_in = 0
        self.decompressed_out = 0

    def on_fault(self, page):
        """Kernel upcall: produce the page's contents."""
        blob = self.store.get(page)
        if blob is None:
            return None  # never-written page: zero-fill
        self.decompressed_out += 1
        return zlib.decompress(blob)

    def touch(self, vaddr, write=False):
        """One application access, maintaining the residency budget."""
        page = (vaddr - self.region.vaddr) // PAGE_SIZE
        self.kernel.access(self.kernel.processes[1], vaddr, write=write)
        self.resident[page] = None
        self.resident.move_to_end(page)
        if len(self.resident) > RESIDENT_BUDGET:
            victim, _ = self.resident.popitem(last=False)
            # Compress-out before eviction (the data must be recoverable).
            payload = bytes([victim % 251]) * PAGE_SIZE
            self.store[victim] = zlib.compress(payload, level=1)
            self.compressed_in += 1
            self.region.evict(victim)


def main() -> None:
    kernel = Kernel(MachineConfig(dram_bytes=1 * GIB, nvm_bytes=0))
    app = kernel.spawn("self-swapping-app")
    swapper = CompressedSwapper(kernel, app)

    addrs = hot_cold_pages(
        swapper.region.vaddr, REGION_PAGES * PAGE_SIZE, TOUCHES,
        hot_fraction=0.2, hot_probability=0.85, seed=17,
    )
    start = kernel.clock.now
    for addr in addrs:
        swapper.touch(addr, write=True)
    elapsed = kernel.clock.now - start

    resident = swapper.region.resident_pages()
    print(f"touched {TOUCHES} addresses over {REGION_PAGES} pages "
          f"in {fmt_ns(elapsed)} (simulated)")
    print(f"resident now: {resident} pages "
          f"(budget {RESIDENT_BUDGET}) — budget held: {resident <= RESIDENT_BUDGET}")
    print(f"user faults delivered: {swapper.region.delivered}")
    print(f"pages compressed out:  {swapper.compressed_in}")
    print(f"pages decompressed in: {swapper.decompressed_out}")
    print(f"kernel swap device used: {kernel.swap is None and 'none — '}"
          f"the application did its own paging")


if __name__ == "__main__":
    main()
