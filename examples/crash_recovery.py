#!/usr/bin/env python3
"""Persistence management: surviving a power failure with file-only memory.

§3.1/§4.1: "all data lives in files that can be marked at any time as
volatile or persistent to indicate whether they should survive process
terminations and system restarts."  This example runs a session-state
service through a crash:

1. the service keeps durable state in a persistent file and scratch state
   in volatile files, with pre-created page tables persisted for O(1)
   remapping;
2. the machine loses power;
3. recovery erases the volatile files (constant-time with crypto erase)
   and the durable state comes back — contents intact, first map cheap.

Run:  python examples/crash_recovery.py
"""

from repro.core.fom import (
    FileOnlyMemory,
    MapStrategy,
    PersistenceManager,
)
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, fmt_ns


def main() -> None:
    kernel = Kernel(
        MachineConfig(
            dram_bytes=1 * GIB, nvm_bytes=4 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
    fom = FileOnlyMemory(kernel)
    persistence = PersistenceManager(fom, crypto_erase=True)

    # --- before the crash ------------------------------------------------
    service = kernel.spawn("session-store")
    durable = fom.allocate(
        service, 32 * MIB, name="/state/sessions",
        strategy=MapStrategy.PREMAP,
    )
    persistence.mark_persistent(durable)
    fom.ptcache.persist(durable.inode)  # page tables live in NVM too
    scratch = fom.allocate(service, 64 * MIB, name="/state/scratch")
    print(f"durable region at {durable.vaddr:#x}, scratch at {scratch.vaddr:#x}")

    # Write real state into the durable file through the file API.
    with fom.fs.open("/state/sessions") as handle:
        handle.pwrite(0, b"user=42;cart=[book,lamp]")
    kernel.access(service, durable.vaddr, write=True)

    # --- power failure ----------------------------------------------------
    print("\n*** power failure ***\n")
    kernel.crash()

    # --- recovery -----------------------------------------------------------
    with kernel.measure() as recovery:
        report = persistence.recover()
    print(f"recovery in {fmt_ns(recovery.elapsed_ns)} "
          f"(crypto erase: {report.constant_time_erase})")
    print(f"  survived: {report.survivors}")
    print(f"  erased:   {report.erased}")

    # The durable file's *contents* survived...
    with fom.fs.open("/state/sessions") as handle:
        state = handle.pread(0, 24)
    print(f"  state bytes intact: {state!r}")

    # ...and its persistent page tables make the first map O(1).
    reborn = kernel.spawn("session-store-v2")
    with kernel.measure() as remap:
        region = fom.open_region(reborn, "/state/sessions",
                                 strategy=MapStrategy.PREMAP)
    print(f"  remapped at {region.vaddr:#x} in {fmt_ns(remap.elapsed_ns)} "
          f"({remap.counter_delta.get('pte_write', 0)} pointer writes, "
          f"rebuild: {bool(remap.counter_delta.get('premap_build'))})")
    kernel.access(reborn, region.vaddr)


if __name__ == "__main__":
    main()
