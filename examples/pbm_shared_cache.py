#!/usr/bin/env python3
"""A multi-process shared cache using physically based mappings.

Scenario: N worker processes all map the same large read-mostly dataset
(a model, an index, a code cache).  With conventional mmap each worker
builds its own page tables — N x (pages) PTE writes and no guarantee the
file lands at the same address anywhere.  With PBM (§4.2) the virtual
address is derived from the physical one, so:

* every worker sees the dataset at the *same* address (pointers inside
  the data stay valid across processes);
* all workers after the first share the same page-table subtrees — a
  handful of pointer writes each.

Run:  python examples/pbm_shared_cache.py
"""

from repro.core.pbm import PbmManager
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, fmt_ns
from repro.vm.vma import Protection

DATASET_MIB = 64
WORKERS = 8


def main() -> None:
    kernel = Kernel(
        MachineConfig(
            dram_bytes=1 * GIB, nvm_bytes=4 * GIB,
            pmfs_extent_align_frames=512,
        )
    )
    pbm = PbmManager(kernel)

    kernel.pmfs.makedirs("/models")
    dataset = kernel.pmfs.create("/models/embeddings", size=DATASET_MIB * MIB)
    print(f"dataset: {DATASET_MIB} MiB in "
          f"{kernel.pmfs.extent_count(dataset)} extent(s)")

    mappings = []
    for index in range(WORKERS):
        worker = kernel.spawn(f"worker{index}")
        with kernel.measure() as m:
            mapping = pbm.map_file(worker, dataset, prot=Protection.READ)
        mappings.append((worker, mapping))
        role = "builds shared tables" if index == 0 else "links them"
        print(f"worker{index}: mapped at {mapping.vaddr:#x} in "
              f"{fmt_ns(m.elapsed_ns)} "
              f"({m.counter_delta.get('pte_write', 0)} PTE writes — {role})")

    addresses = {mapping.vaddr for _, mapping in mappings}
    print(f"identical address in all {WORKERS} workers: {len(addresses) == 1}")

    # Every worker reads the same physical data through shared tables.
    base = mappings[0][1].vaddr
    physical = {kernel.access(worker, base + 12345) for worker, _ in mappings}
    print(f"all workers reach the same physical byte: {len(physical) == 1}")

    # Teardown: unlink windows per process; the shared subtrees survive
    # until the last user goes.
    for worker, mapping in mappings:
        pbm.unmap(mapping)
    print(f"done; shared subtree cache still holds "
          f"{pbm.subtrees.cached_extents} extent(s) for the next worker")


if __name__ == "__main__":
    main()
