#!/usr/bin/env python3
"""Sparse analytics over a huge file, with and without range hardware.

The paper's §3 problem: "for sparse access to large data sets, the
fundamental linear operation cost remains" — demand paging pays a fault
per touched page, pre-population pays a PTE per page.  Range translations
(§3.2/§4.3) map the whole file with one base/limit/offset entry.

This example scans one record per megabyte of a multi-GiB dataset — a
columnar-analytics access pattern — on two machines: classic paging vs
range hardware.

Run:  python examples/range_translation_bigdata.py
"""

from repro.core.rangetrans import RangeMemory
from repro.kernel import Kernel, MachineConfig
from repro.units import GIB, MIB, fmt_ns
from repro.vm.vma import MapFlags

DATASET = 2 * GIB
STRIDE = 1 * MIB  # one record per MiB: 2048 touches


def classic_machine() -> None:
    kernel = Kernel(MachineConfig(dram_bytes=1 * GIB, nvm_bytes=4 * GIB))
    process = kernel.spawn("scanner")
    sys = kernel.syscalls(process)
    kernel.pmfs.makedirs("/warehouse")
    fd = sys.open(kernel.pmfs, "/warehouse/events", create=True, size=DATASET)
    with kernel.measure() as map_m:
        va = sys.mmap(DATASET, fd=fd, flags=MapFlags.SHARED)
    with kernel.measure() as scan_m:
        kernel.access_range(process, va, DATASET, stride=STRIDE)
    print("classic paging:")
    print(f"  mmap            {fmt_ns(map_m.elapsed_ns)}")
    print(f"  sparse scan     {fmt_ns(scan_m.elapsed_ns)} "
          f"({scan_m.counter_delta.get('fault_minor', 0)} faults, "
          f"{scan_m.counter_delta.get('walk_start', 0)} walks)")


def range_machine() -> None:
    kernel = Kernel(
        MachineConfig(
            dram_bytes=1 * GIB, nvm_bytes=4 * GIB, range_hardware=True
        )
    )
    rm = RangeMemory(kernel)
    kernel.pmfs.makedirs("/warehouse")
    inode = kernel.pmfs.create("/warehouse/events", size=DATASET)
    process = kernel.spawn("scanner")
    with kernel.measure() as map_m:
        mapping = rm.map_file(process, inode)
    with kernel.measure() as scan_m:
        kernel.access_range(process, mapping.vaddr, DATASET, stride=STRIDE)
    with kernel.measure() as unmap_m:
        rm.unmap(mapping)
    print("range translations:")
    print(f"  map (1 RTE)     {fmt_ns(map_m.elapsed_ns)}")
    print(f"  sparse scan     {fmt_ns(scan_m.elapsed_ns)} "
          f"({scan_m.counter_delta.get('rtlb_hit', 0)} range-TLB hits, "
          f"{scan_m.counter_delta.get('walk_start', 0)} walks)")
    print(f"  unmap           {fmt_ns(unmap_m.elapsed_ns)} "
          f"(one table write + shootdown)")


def main() -> None:
    print(f"dataset: {DATASET // GIB} GiB, touching one byte per MiB\n")
    classic_machine()
    print()
    range_machine()


if __name__ == "__main__":
    main()
